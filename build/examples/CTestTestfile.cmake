# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_used_cars "/root/repo/build/examples/used_cars" "20000")
set_tests_properties(example_used_cars PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_camera_market "/root/repo/build/examples/camera_market" "15000")
set_tests_properties(example_camera_market PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_covertype "/root/repo/build/examples/covertype_analysis" "20000")
set_tests_properties(example_covertype PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hotel_finder "/root/repo/build/examples/hotel_finder" "20000")
set_tests_properties(example_hotel_finder PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
