// The unified query surface (DESIGN.md §13). Everything that can answer a
// QueryRequest — a single Workbench or the sharded scatter-gather
// coordinator in src/shard/ — implements this interface, so the CLI, the
// benchmarks and the batch drivers are written once against it and a
// deployment picks its topology with a constructor, not an #ifdef. The
// interface deliberately exposes the observability hooks (epoch, result
// cache, metrics export) next to Run/RunBatch: callers that sit above the
// service (admission control, the future network server of ROADMAP item 1)
// need both halves.
#pragma once

#include <string>
#include <vector>

#include "query/request.h"
#include "query/write_batch.h"
#include "workbench/batch_executor.h"

namespace pcube {

/// Pure-virtual front door for preference queries.
class QueryService {
 public:
  virtual ~QueryService() = default;

  /// Answers one request end to end: L1 result cache, planning (or shard
  /// fan-out), execution, metrics. The single-query entry point.
  virtual Result<QueryResponse> Run(const QueryRequest& request) = 0;

  /// Thread-safe single-query entry point for concurrent callers (the
  /// network server's worker pool). Answers are byte-identical to Run(),
  /// but the execution contract matches RunBatch: the signature engines
  /// always run (plan hints only gate cache use), measurements are warm
  /// (no cold-start buffer flush), and there is no boolean-first
  /// degradation on storage damage. Safe from any number of threads.
  virtual Result<QueryResponse> RunShared(const QueryRequest& request) = 0;

  /// Answers `queries` concurrently on `num_workers` threads; results come
  /// back in input order with merged I/O and latency quantiles.
  /// `query_log`, when non-null, receives one JSONL record per query.
  virtual BatchOutput RunBatch(const std::vector<BatchQuery>& queries,
                               size_t num_workers,
                               QueryLog* query_log = nullptr) = 0;

  /// Cost estimates for a predicate set without executing anything.
  virtual Result<PlanEstimate> Estimate(const PredicateSet& preds) = 0;

  /// The mutation entry point (DESIGN.md §15): commits `batch` atomically —
  /// durable in the write-ahead log via group commit, applied to the
  /// structures by background maintenance so readers never block, epochs
  /// bumped so both cache levels invalidate exactly. Safe to call from any
  /// number of threads concurrently with queries; batch.ack picks whether
  /// the call returns at durability or at read-your-writes visibility. The
  /// ONLY public way to mutate a service — the raw structure mutators are
  /// internal so the WAL + epoch contract cannot be bypassed.
  virtual Result<WriteResult> Apply(const WriteBatch& batch) = 0;

  /// The full relation this service answers over (sharded services keep the
  /// global view; result tids always index into it).
  virtual const Dataset& data() const = 0;

  /// Invalidation epochs guarding this service's caches.
  virtual DataEpoch* epoch() = 0;

  /// The L1 semantic result cache consulted by Run/RunBatch, or null. For a
  /// sharded service this is the coordinator-level cache that sits ABOVE
  /// the fan-out, so hot requests never scatter.
  virtual ResultCache* result_cache() = 0;

  /// 1 for a plain Workbench; N for a coordinator over N shards.
  virtual size_t num_shards() const = 0;

  /// Human-readable topology (one line per shard) for `pcube explain`.
  virtual std::string DescribeShards() const = 0;

  /// Publishes this service's gauges into `registry`.
  virtual void ExportMetrics(MetricsRegistry* registry) const = 0;
};

}  // namespace pcube
