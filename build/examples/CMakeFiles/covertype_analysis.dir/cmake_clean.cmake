file(REMOVE_RECURSE
  "CMakeFiles/covertype_analysis.dir/covertype_analysis.cpp.o"
  "CMakeFiles/covertype_analysis.dir/covertype_analysis.cpp.o.d"
  "covertype_analysis"
  "covertype_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/covertype_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
