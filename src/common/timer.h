// Wall-clock stopwatch used by benchmarks and the examples.
#pragma once

#include <chrono>

namespace pcube {

/// Monotonic stopwatch; starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pcube
