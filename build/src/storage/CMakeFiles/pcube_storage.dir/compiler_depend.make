# Empty compiler generated dependencies file for pcube_storage.
# This may be replaced when dependencies are built.
