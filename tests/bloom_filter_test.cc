// Bloom filter tests: no false negatives ever, bounded false positives,
// serialisation round-trip.
#include <gtest/gtest.h>

#include "bitmap/bloom_filter.h"
#include "common/random.h"

namespace pcube {
namespace {

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter filter(1000, 10.0);
  for (uint64_t k = 0; k < 1000; ++k) filter.Add(k * 977 + 13);
  for (uint64_t k = 0; k < 1000; ++k) {
    EXPECT_TRUE(filter.MayContain(k * 977 + 13));
  }
}

TEST(BloomFilterTest, FalsePositiveRateReasonable) {
  BloomFilter filter(10000, 10.0);
  Random rng(11);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 10000; ++i) {
    keys.push_back(rng.Next());
    filter.Add(keys.back());
  }
  int fp = 0;
  const int probes = 20000;
  for (int i = 0; i < probes; ++i) {
    // Fresh random keys; collision with an inserted key is negligible.
    if (filter.MayContain(rng.Next())) ++fp;
  }
  // 10 bits/key targets ~1% FP; allow generous slack.
  EXPECT_LT(static_cast<double>(fp) / probes, 0.05);
}

TEST(BloomFilterTest, SerializeRoundTrip) {
  BloomFilter filter(500, 8.0);
  for (uint64_t k = 0; k < 500; ++k) filter.Add(k * k + 7);
  BloomFilter copy = BloomFilter::Deserialize(filter.Serialize());
  EXPECT_EQ(copy.SizeBytes(), filter.SizeBytes());
  for (uint64_t k = 0; k < 500; ++k) {
    EXPECT_TRUE(copy.MayContain(k * k + 7));
  }
  Random rng(12);
  for (int i = 0; i < 2000; ++i) {
    uint64_t key = rng.Next();
    EXPECT_EQ(copy.MayContain(key), filter.MayContain(key));
  }
}

TEST(BloomFilterTest, TinyFilterStillWorks) {
  BloomFilter filter(1, 4.0);
  filter.Add(42);
  EXPECT_TRUE(filter.MayContain(42));
}

TEST(BloomFilterTest, MoreBitsFewerFalsePositives) {
  Random rng(13);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 5000; ++i) keys.push_back(rng.Next());
  auto fp_rate = [&](double bits_per_key) {
    BloomFilter f(keys.size(), bits_per_key);
    for (uint64_t k : keys) f.Add(k);
    Random probe_rng(14);
    int fp = 0;
    for (int i = 0; i < 20000; ++i) {
      if (f.MayContain(probe_rng.Next())) ++fp;
    }
    return static_cast<double>(fp);
  };
  EXPECT_LT(fp_rate(12.0), fp_rate(4.0));
}

}  // namespace
}  // namespace pcube
