file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_drilldown.dir/bench_fig16_drilldown.cc.o"
  "CMakeFiles/bench_fig16_drilldown.dir/bench_fig16_drilldown.cc.o.d"
  "bench_fig16_drilldown"
  "bench_fig16_drilldown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_drilldown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
