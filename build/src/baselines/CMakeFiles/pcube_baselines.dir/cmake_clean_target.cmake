file(REMOVE_RECURSE
  "libpcube_baselines.a"
)
