// Figure 16: drill-down query vs. new query on CoverType. For each query
// with k >= 2 predicates, the drill-down variant first answers the (k-1)-
// predicate query, then extends it with the k-th predicate by re-seeding the
// candidate heap from the cached result/d_list (Lemma 2), instead of
// searching from the R-tree root.
//
// Paper's claim to reproduce: more than 10x speed-up from caching the
// previous intermediate results.
#include "bench_common.h"

#include "query/incremental.h"

namespace pcube::bench {
namespace {

Workbench* CoverTypeWorkbench() {
  return CachedWorkbench2("fig16", [] {
    CoverTypeConfig config;
    config.num_tuples = 58101 * Scale();
    return GenerateCoverTypeSurrogate(config);
  });
}

Result<SkylineOutput> RunWithSeed(Workbench* wb, const PredicateSet& preds,
                                  const std::vector<SearchEntry>* seed) {
  auto probe = wb->cube()->MakeProbe(preds);
  if (!probe.ok()) return probe.status();
  SkylineEngine engine(wb->tree(), probe->get(), nullptr);
  return seed == nullptr ? engine.Run() : engine.RunFrom(*seed);
}

void BM_NewQuery(benchmark::State& state) {
  int npreds = static_cast<int>(state.range(0));
  Workbench* wb = CoverTypeWorkbench();
  PredicateSet preds = CoverTypePredicates(npreds);
  MeasuredRun last;
  for (auto _ : state) {
    last = RunSignatureSkyline(wb, preds);
    state.SetIterationTime(CostSeconds(last));
  }
  ReportRun(state, last);
}

void BM_DrillDown(benchmark::State& state) {
  int npreds = static_cast<int>(state.range(0));
  Workbench* wb = CoverTypeWorkbench();
  PredicateSet full = CoverTypePredicates(npreds);
  PredicateSet base;
  {
    auto preds = full.predicates();
    for (size_t i = 0; i + 1 < preds.size(); ++i) base.Add(preds[i]);
  }
  for (auto _ : state) {
    // Step 1 (not timed as drill-down): the (k-1)-predicate query.
    PCUBE_CHECK_OK(wb->ColdStart());
    auto first = RunWithSeed(wb, base, nullptr);
    PCUBE_CHECK(first.ok());
    auto seed = DrillDownSeed(*first);
    // Step 2: the timed drill-down with the k-th predicate.
    PCUBE_CHECK_OK(wb->ColdStart());
    Timer t;
    auto second = RunWithSeed(wb, full, &seed);
    PCUBE_CHECK(second.ok());
    MeasuredRun run;
    run.seconds = t.ElapsedSeconds();
    run.io = wb->IoSince();
    state.SetIterationTime(CostSeconds(run));
    state.counters["nodes_expanded"] =
        static_cast<double>(second->counters.nodes_expanded);
    state.counters["disk"] = static_cast<double>(run.io.TotalReads());
    state.counters["results"] = static_cast<double>(second->skyline.size());
  }
}

void BM_RollUp(benchmark::State& state) {
  // The inverse direction (paper: "The performance for roll-up query is
  // similar"): answer the k-predicate query, then relax the last predicate
  // and re-seed from result ∪ b_list.
  int npreds = static_cast<int>(state.range(0));
  Workbench* wb = CoverTypeWorkbench();
  PredicateSet full = CoverTypePredicates(npreds);
  PredicateSet relaxed;
  {
    auto preds = full.predicates();
    for (size_t i = 0; i + 1 < preds.size(); ++i) relaxed.Add(preds[i]);
  }
  for (auto _ : state) {
    PCUBE_CHECK_OK(wb->ColdStart());
    auto first = RunWithSeed(wb, full, nullptr);
    PCUBE_CHECK(first.ok());
    auto seed = RollUpSeed(*first);
    PCUBE_CHECK_OK(wb->ColdStart());
    Timer t;
    auto second = RunWithSeed(wb, relaxed, &seed);
    PCUBE_CHECK(second.ok());
    MeasuredRun run;
    run.seconds = t.ElapsedSeconds();
    run.io = wb->IoSince();
    state.SetIterationTime(CostSeconds(run));
    state.counters["nodes_expanded"] =
        static_cast<double>(second->counters.nodes_expanded);
    state.counters["disk"] = static_cast<double>(run.io.TotalReads());
    state.counters["results"] = static_cast<double>(second->skyline.size());
  }
}

void RegisterAll() {
  for (int npreds : {2, 3, 4}) {
    benchmark::RegisterBenchmark("fig16/NewQuery", BM_NewQuery)
        ->Arg(npreds)
        ->Iterations(3)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("fig16/DrillDown", BM_DrillDown)
        ->Arg(npreds)
        ->Iterations(3)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("fig16/RollUp", BM_RollUp)
        ->Arg(npreds)
        ->Iterations(3)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace pcube::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  pcube::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
