# Empty dependencies file for pcube_core.
# This may be replaced when dependencies are built.
