file(REMOVE_RECURSE
  "CMakeFiles/pcube_common.dir/io_stats.cc.o"
  "CMakeFiles/pcube_common.dir/io_stats.cc.o.d"
  "CMakeFiles/pcube_common.dir/status.cc.o"
  "CMakeFiles/pcube_common.dir/status.cc.o.d"
  "libpcube_common.a"
  "libpcube_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcube_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
