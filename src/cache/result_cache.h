// L1 of the query cache: a semantic result cache over the unified
// QueryRequest. Entries are keyed by the request's *family* fingerprint
// (request.h: canonical form with top-k's k stripped), so one entry serves
//   * exact repeats — same canonical query;
//   * truncation   — a cached top-k with entry.k >= k' (or one that
//     exhausted all matching tuples) answers k' by taking a prefix;
//   * containment  — with enable_containment, a query for predicates
//     P' ⊇ P can reuse the entry cached for P: a top-k list is filtered by
//     the extra predicates (sound when enough survivors remain or the list
//     was exhaustive), and a skyline entry's full engine output seeds a
//     Lemma 2 drill-down (incremental.h) instead of a root restart. Note a
//     skyline canNOT be answered by filtering alone — a point outside the
//     subset relation's skyline may enter the superset-predicate skyline
//     when its dominators stop qualifying.
//
// Freshness is epoch-based (epoch.h): entries carry the epoch of each
// predicate's atomic cell (the global epoch when predicate-free) read
// BEFORE execution, and are compared at lookup; mismatches evict lazily.
// Cached *engine state* (SkylineOutput/TopKOutput with node paths and
// MBRs) additionally requires the structural epoch to be unchanged — any
// tree mutation may relocate nodes, invalidating paths even where answers
// survive. Degraded responses are never inserted: a boolean-first answer
// computed around corrupt signature pages would outlive the corruption.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cache/epoch.h"
#include "cache/slru.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "cube/relation.h"
#include "query/request.h"

namespace pcube {

/// One cached answer (immutable once published; shared by snapshot).
struct CachedResult {
  std::string family;  ///< canonical family string (hash-collision check)
  QueryRequest::Kind kind = QueryRequest::Kind::kSkyline;
  PredicateSet preds;
  size_t k = 0;  ///< top-k: the k the entry was computed with

  std::vector<TupleId> tids;    ///< skyline: ascending; top-k: rank order
  std::vector<double> scores;   ///< top-k only, aligned with tids
  PlanChoice plan = PlanChoice::kSignature;

  /// Full engine output, when the entry was produced by the signature
  /// engine: lets a BatchExecutor hit reconstruct its per-query outputs
  /// and seeds containment drill-downs. Null for boolean-first entries.
  std::shared_ptr<const SkylineOutput> skyline_state;
  std::shared_ptr<const TopKOutput> topk_state;

  /// Epoch stamps read before the producing execution.
  std::vector<std::pair<CellId, uint64_t>> cell_stamps;
  uint64_t global_stamp = 0;     ///< used when preds is empty
  uint64_t structure_stamp = 0;  ///< guards skyline_state/topk_state

  size_t charge = 0;

  /// True when the run returned every matching tuple (top-k that ran dry):
  /// such a list answers any k and survives any predicate filtering.
  bool Exhausted() const { return tids.size() < k; }
};

/// Thread-safe sharded SLRU result cache.
class ResultCache {
 public:
  ResultCache(size_t capacity_bytes, const DataEpoch* epoch,
              bool enable_containment);

  /// Epoch stamps for a request's footprint — its predicates' atomic cells
  /// plus the global/structural epochs. MUST be read before the execution
  /// whose result will be inserted, so concurrent updates can only make
  /// the entry look stale, never wrongly fresh.
  struct Stamps {
    std::vector<std::pair<CellId, uint64_t>> cells;
    uint64_t global = 0;
    uint64_t structure = 0;
  };
  Stamps SnapshotStamps(const PredicateSet& preds) const;

  /// Outcome of a lookup. Exactly one of these shapes:
  ///   * kMiss — nothing usable.
  ///   * kHit — `tids`/`scores` are the final answer; `skyline_state` /
  ///     `topk_state` are attached when additionally reusable (structure
  ///     unchanged; top-k state only when entry.k matched exactly).
  ///   * kContainment, top-k — `tids`/`scores` are the final answer
  ///     (filtered + truncated).
  ///   * kContainment, skyline — `drill_prev` holds the ancestor's engine
  ///     output; the caller must run the drill-down (cached_execution.h)
  ///     and treat a failure as a miss.
  struct Lookup {
    CacheOutcome outcome = CacheOutcome::kMiss;
    std::vector<TupleId> tids;
    std::vector<double> scores;
    PlanChoice plan = PlanChoice::kSignature;
    std::shared_ptr<const SkylineOutput> skyline_state;
    std::shared_ptr<const TopKOutput> topk_state;
    std::shared_ptr<const SkylineOutput> drill_prev;
  };

  /// Probes the exact family, then (enable_containment) predicate subsets
  /// in decreasing size. `data` backs the containment filter pass.
  /// `require_state` restricts service to answers that can reconstruct the
  /// full engine output (BatchExecutor results carry SkylineOutput/
  /// TopKOutput): hits without live state fall through, and top-k
  /// containment — which produces a bare filtered list — is skipped.
  Lookup Find(const QueryRequest& request, const Dataset& data,
              bool require_state = false);

  /// Publishes an executed answer. No-op for degraded responses,
  /// non-canonicalizable requests, or responses without tids semantics.
  /// `stamps` must be the SnapshotStamps taken before the execution.
  void Insert(const QueryRequest& request, const QueryResponse& response,
              std::shared_ptr<const SkylineOutput> skyline_state,
              std::shared_ptr<const TopKOutput> topk_state,
              const Stamps& stamps);

  size_t bytes() const { return bytes_.load(std::memory_order_relaxed); }
  size_t entries() const {
    return entries_.load(std::memory_order_relaxed);
  }
  const DataEpoch* epoch() const { return epoch_; }
  bool containment_enabled() const { return enable_containment_; }

 private:
  static constexpr size_t kShards = 8;
  /// Containment probing enumerates proper predicate subsets (2^n - 1
  /// probes); above this many predicates it is skipped.
  static constexpr size_t kMaxContainmentPreds = 6;

  /// Lock order: shard mutexes are leaves and never nested — containment
  /// probing touches one shard at a time, releasing before the next probe.
  struct Shard {
    Mutex mu;
    SlruShard<uint64_t, std::shared_ptr<const CachedResult>> slru
        GUARDED_BY(mu);
  };
  Shard& ShardOf(uint64_t fp) { return shards_[fp >> 61 & (kShards - 1)]; }

  /// Fetches a fresh (answer-level) entry for a family fingerprint, lazily
  /// evicting stale ones. Collision-checked against `family`.
  std::shared_ptr<const CachedResult> GetFresh(uint64_t fp,
                                               const std::string& family);
  bool AnswerFresh(const CachedResult& entry) const;

  const DataEpoch* epoch_;
  bool enable_containment_;
  std::unique_ptr<Shard[]> shards_;
  std::atomic<size_t> bytes_{0};
  std::atomic<size_t> entries_{0};

  Counter* hits_;
  Counter* misses_;
  Counter* containment_;
  Counter* stale_;
  Counter* evictions_;
  Counter* inserts_;
};

}  // namespace pcube
