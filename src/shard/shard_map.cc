#include "shard/shard_map.h"

namespace pcube {

namespace {

constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FnvMix(uint64_t h, uint64_t value, int bytes) {
  for (int b = 0; b < bytes; ++b) {
    h ^= (value >> (8 * b)) & 0xFF;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

uint64_t BoolRowHash(std::span<const uint32_t> row) {
  uint64_t h = kFnvOffset;
  for (uint32_t v : row) h = FnvMix(h, v, 4);
  return h;
}

size_t ShardOfTuple(const Dataset& data, TupleId tid, size_t num_shards) {
  if (num_shards <= 1) return 0;
  std::span<const uint32_t> row = data.BoolRow(tid);
  uint64_t h =
      row.empty() ? FnvMix(kFnvOffset, tid, 8) : BoolRowHash(row);
  return static_cast<size_t>(h % num_shards);
}

ShardPartition PartitionByBoolHash(const Dataset& data, size_t num_shards) {
  ShardPartition out;
  out.datasets.reserve(num_shards);
  out.global_tids.resize(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    out.datasets.emplace_back(data.schema(), 0);
  }
  for (TupleId t = 0; t < data.num_tuples(); ++t) {
    size_t s = ShardOfTuple(data, t, num_shards);
    out.datasets[s].Append(data.BoolRow(t), data.PrefPoint(t));
    out.global_tids[s].push_back(t);
  }
  return out;
}

}  // namespace pcube
