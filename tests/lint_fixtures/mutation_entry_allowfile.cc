// Negative control: a file-level allow pragma sanctions every mutator call
// in the file (the shape a dedicated-purpose test file uses).
// pcube-lint: allow-mutation-file(fixture exercising the raw R*-tree API)
#include "lint_fixture_support.h"

namespace pcube {

Status BulkFixture(RStarTree& tree) {
  PathChangeSet changes;
  Status s = tree.Insert(0.5f, 1, &changes);
  if (!s.ok()) return s;
  return tree.Delete(0.5f, 1, &changes);
}

}  // namespace pcube
