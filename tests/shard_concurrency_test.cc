// Concurrent scatter-gather: many client threads issue Run() and RunBatch()
// against ONE ShardedWorkbench at once, exercising the shared fan-out pool,
// the coordinator L1 (concurrent hits and misses of the same entry), every
// shard's buffer pool/fragment cache, and the metrics registry under real
// contention. Answers must stay byte-identical to single-threaded
// references. Runs under TSan via scripts/ci.sh (label `tsan`).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "shard/sharded_workbench.h"
#include "workbench/workbench.h"

namespace pcube {
namespace {

Dataset MakeData(uint64_t rows) {
  SyntheticConfig config;
  config.num_tuples = rows;
  config.num_bool = 3;
  config.num_pref = 2;
  config.bool_cardinality = 8;
  config.seed = 77;
  return GenerateSynthetic(config);
}

/// Tie-order-insensitive view of an answer (engines pop exact score ties
/// in heap order, the merge breaks them by tid; see shard_test.cc).
std::vector<std::pair<double, TupleId>> Canonical(
    const std::vector<TupleId>& tids, const std::vector<double>& scores) {
  std::vector<std::pair<double, TupleId>> pairs;
  pairs.reserve(tids.size());
  for (size_t i = 0; i < tids.size(); ++i) {
    pairs.emplace_back(scores.empty() ? 0.0 : scores[i], tids[i]);
  }
  if (!scores.empty()) std::sort(pairs.begin(), pairs.end());
  return pairs;
}

std::vector<QueryRequest> Workload() {
  auto linear = std::make_shared<LinearRanking>(std::vector<double>{1.0, 2.0});
  std::vector<QueryRequest> queries;
  for (uint32_t v = 0; v < 8; ++v) {
    queries.push_back(QueryRequest::Skyline(PredicateSet{{0, v}}));
    queries.push_back(QueryRequest::TopK(PredicateSet{{1, v}}, linear, 5));
  }
  SkylineQueryOptions band;
  band.skyband_k = 2;
  queries.push_back(QueryRequest::Skyline(PredicateSet{{2, 3}}, band));
  queries.push_back(QueryRequest::Skyline(PredicateSet{}));
  return queries;
}

TEST(ShardConcurrencyTest, ParallelClientsGetIdenticalAnswers) {
  Dataset data = MakeData(2000);
  ShardedOptions options;
  options.num_shards = 3;
  options.result_cache_mb = 8;  // concurrent hits AND misses of one entry
  auto built = ShardedWorkbench::Build(data, options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ShardedWorkbench& sharded = **built;
  std::vector<QueryRequest> queries = Workload();

  // Single-threaded references from an unsharded bench (caches off).
  WorkbenchOptions plain;
  plain.result_cache_mb = 0;
  plain.fragment_cache_mb = 0;
  auto reference = Workbench::Build(data, plain);
  ASSERT_TRUE(reference.ok());
  std::vector<std::vector<std::pair<double, TupleId>>> expected;
  for (const QueryRequest& q : queries) {
    auto resp = (*reference)->Run(q);
    ASSERT_TRUE(resp.ok());
    expected.push_back(Canonical(resp->tids, resp->scores));
  }

  constexpr int kThreads = 4;
  constexpr int kItersPerThread = 30;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        // Offset start positions so threads collide on the same hot
        // entries from different phases of the loop.
        const size_t q = (t * 5 + i) % queries.size();
        auto resp = sharded.Run(queries[q]);
        if (!resp.ok()) {
          failures.fetch_add(1);
          continue;
        }
        if (Canonical(resp->tids, resp->scores) != expected[q]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  // One more client drives the batch path concurrently with the Run()s.
  clients.emplace_back([&] {
    std::vector<BatchQuery> batch;
    for (const QueryRequest& q : queries) {
      if (q.kind == QueryRequest::Kind::kSkyline) {
        batch.push_back(BatchQuery::Skyline(q.preds, q.skyline));
      } else {
        batch.push_back(BatchQuery::TopK(q.preds, q.ranking, q.k));
      }
    }
    for (int round = 0; round < 3; ++round) {
      BatchOutput out = sharded.RunBatch(batch, /*num_workers=*/2);
      if (out.failed != 0) {
        failures.fetch_add(static_cast<int>(out.failed));
        continue;
      }
      for (size_t i = 0; i < out.results.size(); ++i) {
        if (Canonical(out.results[i].response.tids,
                      out.results[i].response.scores) != expected[i]) {
          mismatches.fetch_add(1);
        }
      }
    }
  });
  for (std::thread& c : clients) c.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace pcube
