#!/usr/bin/env bash
# Reproduces everything: build, tests, all paper figures, ablations.
#   PCUBE_BENCH_SCALE=50  restores the paper's absolute dataset sizes
#   PCUBE_PAGE_LATENCY_US sets the simulated page-read latency (default 5000)
set -euo pipefail
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure 2>&1 | tee test_output.txt
for b in build/bench/bench_*; do "$b"; done 2>&1 | tee bench_output.txt
