// WAL tests (DESIGN.md §15, storage/wal.h): stage/commit round trips across
// restarts, group commit coalescing concurrent writers into one fsync, the
// checkpoint life cycle, and the recovery taxonomy — torn tail (expected
// crash residue: discarded), stale records (skipped), LSN gaps (corruption).
// Labeled asan (raw page buffers) and tsan (the leader/follower handshake)
// for scripts/ci.sh.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/bit_util.h"
#include "storage/page_manager.h"
#include "storage/wal.h"

namespace pcube {
namespace {

class WalTest : public ::testing::Test {
 protected:
  std::string path_ = testing::TempDir() + "/pcube_wal_test.wal";

  void SetUp() override { std::remove(path_.c_str()); }
  void TearDown() override { std::remove(path_.c_str()); }

  std::unique_ptr<Wal> OpenFresh(bool truncate = true) {
    Wal::Options options;
    options.path = path_;
    options.truncate = truncate;
    auto wal = Wal::Open(options);
    PCUBE_CHECK(wal.ok()) << wal.status().ToString();
    return std::move(*wal);
  }

  /// Flips one byte of the raw log file (fault model: at-rest rot / torn
  /// page). `offset` is an absolute file offset.
  void FlipByte(uint64_t offset) {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0xFF);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&byte, 1);
  }
};

TEST_F(WalTest, CommitSurvivesReopen) {
  {
    auto wal = OpenFresh();
    for (int i = 0; i < 3; ++i) {
      auto lsn = wal->Stage("record-" + std::to_string(i));
      ASSERT_TRUE(lsn.ok());
      EXPECT_EQ(*lsn, static_cast<uint64_t>(i + 1));
    }
    ASSERT_TRUE(wal->WaitDurable(3).ok());
    EXPECT_EQ(wal->durable_lsn(), 3u);
    EXPECT_TRUE(wal->durable());
  }
  auto wal = OpenFresh(/*truncate=*/false);
  std::vector<Wal::Record> replayed;
  auto report = wal->Replay([&](const Wal::Record& r) {
    replayed.push_back(r);
    return Status::OK();
  });
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok());
  EXPECT_FALSE(report->torn_tail);
  ASSERT_EQ(replayed.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(replayed[i].lsn, static_cast<uint64_t>(i + 1));
    EXPECT_EQ(replayed[i].payload, "record-" + std::to_string(i));
  }
  // The append cursor continues the sequence.
  auto lsn = wal->Stage("after-reopen");
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 4u);
  EXPECT_TRUE(wal->WaitDurable(4).ok());
}

TEST_F(WalTest, StagedGroupCommitsInOneSync) {
  auto wal = OpenFresh();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(wal->Stage("r" + std::to_string(i)).ok());
  }
  const uint64_t syncs_before = wal->sync_count();
  uint32_t group = 0;
  // The first waiter leads and flushes EVERY staged record: one sync.
  ASSERT_TRUE(wal->WaitDurable(8, &group).ok());
  EXPECT_EQ(group, 8u);
  EXPECT_EQ(wal->sync_count(), syncs_before + 1);
  EXPECT_EQ(wal->durable_lsn(), 8u);
}

TEST_F(WalTest, ConcurrentWritersAllCommit) {
  auto wal = OpenFresh();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto lsn = wal->Stage("t" + std::to_string(t) + "-" +
                              std::to_string(i));
        if (!lsn.ok() || !wal->WaitDurable(*lsn).ok()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(wal->durable_lsn(), static_cast<uint64_t>(kThreads * kPerThread));
  // Coalescing is opportunistic, but the sync count can never exceed the
  // commit count (and the group-size histogram metric tracks the rest).
  EXPECT_LE(wal->sync_count(),
            static_cast<uint64_t>(kThreads * kPerThread));
}

TEST_F(WalTest, TornTailDiscardedStaleSkippedOnInspect) {
  {
    auto wal = OpenFresh();
    ASSERT_TRUE(wal->Stage("first-record").ok());   // lsn 1
    ASSERT_TRUE(wal->Stage("second-record").ok());  // lsn 2
    ASSERT_TRUE(wal->WaitDurable(2).ok());
  }
  // Damage the SECOND record's payload. Record 1 spans region bytes
  // [0, 16 + 12); record 2 starts at 28; its payload starts at 44. The
  // record region begins at file offset kPageSize (page 0 is the header).
  FlipByte(kPageSize + 16 + std::string("first-record").size() + 16 + 2);
  auto inspected = Wal::Inspect(path_);
  ASSERT_TRUE(inspected.ok()) << inspected.status().ToString();
  EXPECT_TRUE(inspected->ok()) << inspected->errors.front();
  EXPECT_TRUE(inspected->torn_tail);  // CRC failure at the tail: discarded
  EXPECT_EQ(inspected->num_records, 1u);
  EXPECT_EQ(inspected->last_lsn, 1u);

  // Replay agrees, heals the tail, and the next commit reuses lsn 2.
  auto wal = OpenFresh(/*truncate=*/false);
  std::vector<uint64_t> lsns;
  auto report = wal->Replay([&](const Wal::Record& r) {
    lsns.push_back(r.lsn);
    return Status::OK();
  });
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->torn_tail);
  EXPECT_EQ(lsns, std::vector<uint64_t>{1});
  auto lsn = wal->Stage("rewritten");
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 2u);
  ASSERT_TRUE(wal->WaitDurable(2).ok());
  auto clean = Wal::Inspect(path_);
  ASSERT_TRUE(clean.ok());
  EXPECT_FALSE(clean->torn_tail);
  EXPECT_EQ(clean->num_records, 2u);
}

TEST_F(WalTest, StaleRecordsBehindHeaderSkipped) {
  // A crash BETWEEN the checkpoint's header rewrite and the region zeroing
  // leaves pre-checkpoint records on disk with LSNs below the header's
  // start_lsn. Simulate by advancing start_lsn by hand: the scan must skip
  // the stale prefix without error and count only current records.
  {
    auto wal = OpenFresh();
    ASSERT_TRUE(wal->Stage("one").ok());
    ASSERT_TRUE(wal->Stage("two").ok());
    ASSERT_TRUE(wal->Stage("three").ok());
    ASSERT_TRUE(wal->WaitDurable(3).ok());
  }
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    uint8_t lsn_le[8];
    bit_util::StoreLE(lsn_le, static_cast<uint64_t>(3));
    f.seekp(8);  // header: u32 magic | u32 version | u64 start_lsn
    f.write(reinterpret_cast<const char*>(lsn_le), sizeof(lsn_le));
  }
  auto inspected = Wal::Inspect(path_);
  ASSERT_TRUE(inspected.ok());
  EXPECT_TRUE(inspected->ok());
  EXPECT_EQ(inspected->start_lsn, 3u);
  EXPECT_EQ(inspected->num_records, 1u);  // "three" alone; "one"/"two" stale
  EXPECT_EQ(inspected->last_lsn, 3u);

  auto wal = OpenFresh(/*truncate=*/false);
  std::vector<std::string> payloads;
  auto report = wal->Replay([&](const Wal::Record& r) {
    payloads.push_back(r.payload);
    return Status::OK();
  });
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(payloads, std::vector<std::string>{"three"});
}

TEST_F(WalTest, CheckpointEmptiesLog) {
  {
    auto wal = OpenFresh();
    ASSERT_TRUE(wal->Stage("before-checkpoint").ok());
    ASSERT_TRUE(wal->WaitDurable(1).ok());
    ASSERT_TRUE(wal->Checkpoint().ok());
    EXPECT_EQ(wal->next_lsn(), 2u);
    // Post-checkpoint commits land at the head of the emptied region.
    ASSERT_TRUE(wal->Stage("after-checkpoint").ok());
    ASSERT_TRUE(wal->WaitDurable(2).ok());
  }
  auto inspected = Wal::Inspect(path_);
  ASSERT_TRUE(inspected.ok());
  EXPECT_TRUE(inspected->ok());
  EXPECT_EQ(inspected->start_lsn, 2u);
  EXPECT_EQ(inspected->num_records, 1u);
  EXPECT_EQ(inspected->last_lsn, 2u);
}

TEST_F(WalTest, LsnGapBehindValidRecordsIsCorruption) {
  {
    auto wal = OpenFresh();
    ASSERT_TRUE(wal->Stage("one").ok());
    ASSERT_TRUE(wal->WaitDurable(1).ok());
    ASSERT_TRUE(wal->Checkpoint().ok());       // header start_lsn -> 2
    ASSERT_TRUE(wal->Stage("two").ok());       // lsn 2 at the region head
    ASSERT_TRUE(wal->WaitDurable(2).ok());
  }
  // Rewind the header's start_lsn to 1: the scan now EXPECTS lsn 1 but
  // finds an intact record claiming lsn 2 — a gap, i.e. lost records.
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    uint8_t lsn_le[8];
    bit_util::StoreLE(lsn_le, static_cast<uint64_t>(1));
    f.seekp(8);  // header: u32 magic | u32 version | u64 start_lsn
    f.write(reinterpret_cast<const char*>(lsn_le), sizeof(lsn_le));
  }
  auto inspected = Wal::Inspect(path_);
  ASSERT_TRUE(inspected.ok());
  ASSERT_FALSE(inspected->ok());
  EXPECT_NE(inspected->errors.front().find("LSN gap"), std::string::npos);

  // Replay refuses outright: acknowledged records are missing.
  Wal::Options options;
  options.path = path_;
  auto wal = Wal::Open(options);
  ASSERT_TRUE(wal.ok());
  auto report = (*wal)->Replay([](const Wal::Record&) { return Status::OK(); });
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsCorruption());
}

TEST_F(WalTest, RamBackedLogCommitsButIsNotDurable) {
  Wal::Options options;  // empty path: in-memory
  auto wal = Wal::Open(options);
  ASSERT_TRUE(wal.ok());
  EXPECT_FALSE((*wal)->durable());
  auto lsn = (*wal)->Stage("ephemeral");
  ASSERT_TRUE(lsn.ok());
  uint32_t group = 0;
  EXPECT_TRUE((*wal)->WaitDurable(*lsn, &group).ok());
  EXPECT_EQ(group, 1u);
}

TEST_F(WalTest, WaitDurableRejectsUnstagedLsn) {
  // An LSN past the append cursor could never become durable; waiting on it
  // must fail fast instead of looping on empty group commits forever.
  auto wal = OpenFresh();
  EXPECT_TRUE(wal->WaitDurable(1).IsInvalidArgument());  // nothing staged
  auto lsn = wal->Stage("only-record");
  ASSERT_TRUE(lsn.ok());
  EXPECT_TRUE(wal->WaitDurable(*lsn + 1).IsInvalidArgument());
  EXPECT_TRUE(wal->WaitDurable(*lsn).ok());
}

TEST_F(WalTest, OversizedPayloadRejected) {
  auto wal = OpenFresh();
  std::string huge(kMaxWalPayload + 1, 'x');
  EXPECT_TRUE(wal->Stage(huge).status().IsInvalidArgument());
}

}  // namespace
}  // namespace pcube
