// Skyline query processing with Algorithm 1 (paper §V.A): branch-and-bound
// over the R-tree in ascending d(n) = coordinate-sum order [9], pruning each
// candidate first by domination against the skyline found so far, then by
// the boolean probe (signatures). Entries pruned by domination go to d_list,
// entries pruned by the boolean predicate to b_list — the seeds of
// drill-down / roll-up queries (Lemma 2, incremental.h).
#pragma once

#include <chrono>
#include <optional>

#include <vector>

#include "common/trace.h"
#include "core/probe.h"
#include "query/dominance_kernels.h"
#include "query/query_types.h"
#include "query/verifier.h"
#include "rtree/rstar_tree.h"

namespace pcube {

/// Executes skyline queries against one R-tree + boolean probe.
/// (SkylineQueryOptions lives in query_types.h with the other shared query
/// framework types.)
class SkylineEngine {
 public:
  /// `probe` supplies boolean pruning (TrueProbe for the Domination
  /// baseline). `verifier`, when non-null, re-checks every accepted data
  /// object against the base table (minimal probing [3]; also required for
  /// non-exact probes). Both must outlive the engine.
  SkylineEngine(const RStarTree* tree, BooleanProbe* probe,
                const TupleVerifier* verifier,
                SkylineQueryOptions options = {});

  /// Runs Algorithm 1 from the root.
  Result<SkylineOutput> Run();

  /// Runs Algorithm 1 with a reconstructed candidate heap (Lemma 2): the
  /// seed replaces the root, everything else is unchanged.
  Result<SkylineOutput> RunFrom(const std::vector<SearchEntry>& seed);

  /// Optional per-stage timing sink (signature_probe, heap_expand,
  /// boolean_verify). Must outlive the run; null disables tracing.
  void set_trace(Trace* trace) { trace_ = trace; }

  /// Optional wall-clock deadline, checked once per heap pop: when it
  /// passes, the run stops with Status::Timeout instead of partial results
  /// (a partial skyline would be silently wrong — supersets are fine,
  /// missing members are not).
  void set_deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
  }

 private:
  double EntryKey(const RectF& rect) const;
  /// Optimistic transformed coordinate of `rect` on dimension d: the least
  /// value any point inside can attain (identity without an origin; minimal
  /// |x - origin_d| with one).
  double LowCoord(const RectF& rect, int d) const;
  /// True when the entry's optimistic corner is dominated by >= skyband_k
  /// current results (batched kernel over the SoA window).
  bool Dominated(const RectF& rect) const;
  /// Writes the transformed coordinates of `rect` on the preference
  /// dimensions into cand_scratch_.
  void TransformInto(const RectF& rect) const;
  /// Applies the paper's prune() (lines 14-20): preference first, boolean
  /// second; files the entry into the appropriate list.
  Result<bool> Prune(const SearchEntry& e);

  const RStarTree* tree_;
  BooleanProbe* probe_;
  const TupleVerifier* verifier_;
  Trace* trace_ = nullptr;
  std::optional<std::chrono::steady_clock::time_point> deadline_;
  SkylineQueryOptions options_;
  std::vector<int> dims_;
  SkylineOutput out_;
  /// Column-major transformed coordinates of out_.skyline, appended as
  /// members are accepted, so every dominance test runs the batched kernel
  /// instead of re-deriving coordinates from each member's rect.
  DominanceWindow window_;
  mutable std::vector<double> cand_scratch_;
};

}  // namespace pcube
