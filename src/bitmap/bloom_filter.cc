#include "bitmap/bloom_filter.h"

#include <algorithm>
#include <cmath>

namespace pcube {

BloomFilter::BloomFilter(size_t expected_keys, double bits_per_key) {
  expected_keys = std::max<size_t>(expected_keys, 1);
  num_bits_ = std::max<size_t>(
      64, static_cast<size_t>(static_cast<double>(expected_keys) * bits_per_key));
  num_bits_ = (num_bits_ + 63) / 64 * 64;
  num_probes_ = std::clamp(static_cast<int>(bits_per_key * 0.69), 1, 30);
  words_.assign(num_bits_ / 64, 0);
}

uint64_t BloomFilter::Mix(uint64_t key) {
  key ^= key >> 33;
  key *= 0xff51afd7ed558ccdULL;
  key ^= key >> 33;
  key *= 0xc4ceb9fe1a85ec53ULL;
  key ^= key >> 33;
  return key;
}

void BloomFilter::Add(uint64_t key) {
  uint64_t h = Mix(key);
  uint64_t delta = (h >> 32) | (h << 32) | 1;
  for (int i = 0; i < num_probes_; ++i) {
    bit_util::SetBit(words_.data(), h % num_bits_);
    h += delta;
  }
}

bool BloomFilter::MayContain(uint64_t key) const {
  uint64_t h = Mix(key);
  uint64_t delta = (h >> 32) | (h << 32) | 1;
  for (int i = 0; i < num_probes_; ++i) {
    if (!bit_util::GetBit(words_.data(), h % num_bits_)) return false;
    h += delta;
  }
  return true;
}

std::vector<uint8_t> BloomFilter::Serialize() const {
  std::vector<uint8_t> out(8 + 4 + words_.size() * 8);
  bit_util::StoreLE<uint64_t>(out.data(), num_bits_);
  bit_util::StoreLE<uint32_t>(out.data() + 8, static_cast<uint32_t>(num_probes_));
  for (size_t i = 0; i < words_.size(); ++i) {
    bit_util::StoreLE<uint64_t>(out.data() + 12 + i * 8, words_[i]);
  }
  return out;
}

BloomFilter BloomFilter::Deserialize(const std::vector<uint8_t>& bytes) {
  PCUBE_CHECK_GE(bytes.size(), size_t{12});
  uint64_t num_bits = bit_util::LoadLE<uint64_t>(bytes.data());
  int probes = static_cast<int>(bit_util::LoadLE<uint32_t>(bytes.data() + 8));
  std::vector<uint64_t> words(num_bits / 64);
  PCUBE_CHECK_EQ(bytes.size(), 12 + words.size() * 8);
  for (size_t i = 0; i < words.size(); ++i) {
    words[i] = bit_util::LoadLE<uint64_t>(bytes.data() + 12 + i * 8);
  }
  return BloomFilter(num_bits, probes, std::move(words));
}

}  // namespace pcube
