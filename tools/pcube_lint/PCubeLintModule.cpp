// pcube-lint: the clang-tidy plugin module (DESIGN.md §16).
//
// Preferred implementation of the four architecture-aware checks — loaded
// into the system clang-tidy with
//   clang-tidy -load=$BUILD/tools/pcube_lint/libpcube_lint.so \
//              -checks='pcube-*' -p $BUILD <files>
// Requires the clang-tidy development headers (clang-tools-extra); the
// CMakeLists.txt next to this file detects them and SKIPs the target with a
// notice when absent, in which case scripts/lint.sh enforces the same rules
// through the lexical fallback driver (pcube_lint_scan.cc). Check
// semantics, allowlists and pragma escape hatches are shared between the
// two implementations and documented in DESIGN.md §16.
#include "clang-tidy/ClangTidy.h"
#include "clang-tidy/ClangTidyCheck.h"
#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/Attr.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Lex/PPCallbacks.h"
#include "clang/Lex/Preprocessor.h"
#include "llvm/ADT/StringRef.h"

using namespace clang;
using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace pcube_lint {

namespace {

// ---- Shared helpers -------------------------------------------------------

// Returns the raw text of the `offset`-relative line around `Loc`
// (0 = the line containing Loc, -1 = the line above).
StringRef LineAt(const SourceManager &SM, SourceLocation Loc, int offset) {
  const SourceLocation Spelling = SM.getSpellingLoc(Loc);
  const FileID FID = SM.getFileID(Spelling);
  const unsigned LineNo = SM.getSpellingLineNumber(Spelling);
  if ((int)LineNo + offset < 1) return StringRef();
  bool Invalid = false;
  StringRef Buffer = SM.getBufferData(FID, &Invalid);
  if (Invalid) return StringRef();
  const unsigned Want = LineNo + offset;
  size_t Pos = 0;
  for (unsigned L = 1; L < Want; ++L) {
    Pos = Buffer.find('\n', Pos);
    if (Pos == StringRef::npos) return StringRef();
    ++Pos;
  }
  const size_t End = Buffer.find('\n', Pos);
  return Buffer.slice(Pos, End == StringRef::npos ? Buffer.size() : End);
}

// A `// pcube-lint: <tag>(...)` pragma on the same or the preceding line.
bool HasPragmaNearby(const SourceManager &SM, SourceLocation Loc,
                     StringRef Tag) {
  for (int off = 0; off >= -1; --off) {
    const StringRef Line = LineAt(SM, Loc, off);
    const size_t P = Line.find("pcube-lint:");
    if (P == StringRef::npos) continue;
    if (Line.substr(P).contains(Tag)) return true;
  }
  return false;
}

// Any comment with words on the same or the preceding line (rationale).
// Fixture markers (`expect-lint:`) are invisible, as in the fallback.
bool HasRationaleNearby(const SourceManager &SM, SourceLocation Loc) {
  for (int off = 0; off >= -1; --off) {
    const StringRef Line = LineAt(SM, Loc, off);
    const size_t P = Line.find("//");
    if (P == StringRef::npos) continue;
    const StringRef Body = Line.substr(P + 2);
    if (Body.contains("expect-lint:")) continue;
    if (Body.find_first_of(
            "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789") !=
        StringRef::npos)
      return true;
  }
  return false;
}

std::string FileOf(const SourceManager &SM, SourceLocation Loc) {
  return SM.getFilename(SM.getSpellingLoc(Loc)).str();
}

bool FileAllowsMutation(const SourceManager &SM, SourceLocation Loc) {
  const FileID FID = SM.getFileID(SM.getSpellingLoc(Loc));
  bool Invalid = false;
  StringRef Buffer = SM.getBufferData(FID, &Invalid);
  return !Invalid && Buffer.contains("pcube-lint: allow-mutation-file");
}

// ---- pcube-mutation-entry -------------------------------------------------

// QueryService::Apply(WriteBatch) is the only legal mutation entry point
// (DESIGN.md §15): it is what funnels every write through the WAL, the
// DataEpoch stamping and the structure lock. This check flags direct calls
// to the raw structure mutators anywhere outside WriteApplier, the
// mutators' own implementation files, or explicitly tagged code.
class MutationEntryCheck : public ClangTidyCheck {
 public:
  using ClangTidyCheck::ClangTidyCheck;

  void registerMatchers(ast_matchers::MatchFinder *Finder) override {
    Finder->addMatcher(
        cxxMemberCallExpr(
            callee(cxxMethodDecl(anyOf(
                cxxMethodDecl(hasAnyName("ApplyChanges", "Rebuild"),
                              ofClass(hasName("::pcube::PCube"))),
                cxxMethodDecl(hasAnyName("Insert", "Delete"),
                              ofClass(hasName("::pcube::RStarTree"))),
                cxxMethodDecl(hasName("Append"),
                              ofClass(hasName("::pcube::TableStore")))))))
            .bind("call"),
        this);
  }

  void check(const ast_matchers::MatchFinder::MatchResult &Result) override {
    const auto *Call = Result.Nodes.getNodeAs<CXXMemberCallExpr>("call");
    const SourceManager &SM = *Result.SourceManager;
    const SourceLocation Loc = Call->getExprLoc();
    const std::string File = FileOf(SM, Loc);
    static const char *AllowedPaths[] = {
        "src/workbench/write_path.cc", "src/rtree/", "src/core/pcube.",
        "src/storage/table_store."};
    for (const char *P : AllowedPaths) {
      if (File.find(P) != std::string::npos) return;
    }
    if (HasPragmaNearby(SM, Loc, "allow-mutation")) return;
    if (FileAllowsMutation(SM, Loc)) return;
    diag(Loc,
         "direct call to %0 bypasses QueryService::Apply (the only legal "
         "mutation entry point, DESIGN.md §15); route the write through a "
         "WriteBatch or tag it `// pcube-lint: allow-mutation(<why>)`")
        << Call->getMethodDecl()->getQualifiedNameAsString();
  }
};

// ---- pcube-wire-no-abort --------------------------------------------------

// Wire bytes are attacker-controlled: an abort-family call reachable from
// decode code is a remote crash (DESIGN.md §14). Flags CHECK-macro
// expansions and abort()/assert() calls in wire-facing files; values the
// server produced itself may be tagged `// pcube-lint: trusted(<why>)`.
class WireNoAbortCheck : public ClangTidyCheck {
 public:
  using ClangTidyCheck::ClangTidyCheck;

  static bool InWireScope(StringRef File) {
    return File.contains("src/server/");
  }

  static bool IsAbortMacro(StringRef Name) {
    return Name.startswith("PCUBE_CHECK") || Name.startswith("PCUBE_DCHECK") ||
           Name == "CHECK" || Name.startswith("CHECK_") || Name == "DCHECK" ||
           Name.startswith("DCHECK_") || Name == "assert";
  }

  class AbortMacroCallbacks : public PPCallbacks {
   public:
    AbortMacroCallbacks(WireNoAbortCheck *Check, const SourceManager &SM)
        : Check(Check), SM(SM) {}
    void MacroExpands(const Token &MacroNameTok, const MacroDefinition &,
                      SourceRange, const MacroArgs *) override {
      const IdentifierInfo *II = MacroNameTok.getIdentifierInfo();
      if (!II || !IsAbortMacro(II->getName())) return;
      const SourceLocation Loc = MacroNameTok.getLocation();
      if (!InWireScope(FileOf(SM, Loc))) return;
      if (HasPragmaNearby(SM, Loc, "trusted")) return;
      Check->diag(Loc,
                  "abort-family macro `%0` in wire-facing code: wire-derived "
                  "bytes must never reach a process abort (DESIGN.md §14); "
                  "return a Status, or tag a locally-produced value "
                  "`// pcube-lint: trusted(<why>)`")
          << II->getName();
    }

   private:
    WireNoAbortCheck *Check;
    const SourceManager &SM;
  };

  void registerPPCallbacks(const SourceManager &SM, Preprocessor *PP,
                           Preprocessor *) override {
    PP->addPPCallbacks(std::make_unique<AbortMacroCallbacks>(this, SM));
  }

  void registerMatchers(ast_matchers::MatchFinder *Finder) override {
    Finder->addMatcher(
        callExpr(callee(functionDecl(hasAnyName("abort", "::abort"))))
            .bind("abort"),
        this);
  }

  void check(const ast_matchers::MatchFinder::MatchResult &Result) override {
    const auto *Call = Result.Nodes.getNodeAs<CallExpr>("abort");
    const SourceManager &SM = *Result.SourceManager;
    const SourceLocation Loc = Call->getExprLoc();
    if (!InWireScope(FileOf(SM, Loc))) return;
    if (HasPragmaNearby(SM, Loc, "trusted")) return;
    diag(Loc,
         "abort() reachable in wire-facing code: wire-derived bytes must "
         "never reach a process abort (DESIGN.md §14)");
  }
};

// ---- pcube-guarded-by-completeness ----------------------------------------

// Every mutable member of a lock-owning class must either declare its lock
// (GUARDED_BY/PT_GUARDED_BY) or carry an explicit
// `// pcube-lint: lock-free(<why>)` annotation — an unannotated member is
// a hole in the -Wthread-safety proof PR 5 established.
class GuardedByCompletenessCheck : public ClangTidyCheck {
 public:
  using ClangTidyCheck::ClangTidyCheck;

  static bool TypeNameContains(QualType QT, std::initializer_list<StringRef> Needles) {
    const std::string Name = QT.getAsString();
    for (StringRef N : Needles) {
      if (StringRef(Name).contains(N)) return true;
    }
    return false;
  }

  void registerMatchers(ast_matchers::MatchFinder *Finder) override {
    Finder->addMatcher(
        cxxRecordDecl(isDefinition(),
                      has(fieldDecl(hasType(hasUnqualifiedDesugaredType(
                          recordType(hasDeclaration(cxxRecordDecl(hasAnyName(
                              "::pcube::Mutex", "::pcube::SharedMutex")))))))))
            .bind("record"),
        this);
  }

  void check(const ast_matchers::MatchFinder::MatchResult &Result) override {
    const auto *Record = Result.Nodes.getNodeAs<CXXRecordDecl>("record");
    const SourceManager &SM = *Result.SourceManager;
    for (const FieldDecl *Field : Record->fields()) {
      const QualType QT = Field->getType();
      if (QT.isConstQualified()) continue;
      if (TypeNameContains(QT, {"Mutex", "SharedMutex", "CondVar", "atomic"}))
        continue;
      if (Field->hasAttr<GuardedByAttr>() || Field->hasAttr<PtGuardedByAttr>())
        continue;
      // In a region or next to a line pragma?
      if (HasPragmaNearby(SM, Field->getLocation(), "lock-free")) continue;
      if (InLockFreeRegion(SM, Field->getLocation())) continue;
      diag(Field->getLocation(),
           "member %0 of lock-owning class %1 has no GUARDED_BY/"
           "PT_GUARDED_BY and no `// pcube-lint: lock-free(<why>)` "
           "annotation")
          << Field << Record;
    }
  }

 private:
  // Scans backwards from the member's line for an unclosed
  // `begin-lock-free` region pragma.
  bool InLockFreeRegion(const SourceManager &SM, SourceLocation Loc) {
    for (int off = -1; off >= -200; --off) {
      const StringRef Line = LineAt(SM, Loc, off);
      if (Line.data() == nullptr && Line.empty() && off < -1) break;
      if (Line.contains("pcube-lint: end-lock-free")) return false;
      if (Line.contains("pcube-lint: begin-lock-free")) return true;
    }
    return false;
  }
};

// ---- pcube-ignore-error-rationale -----------------------------------------

// `.IgnoreError()` keeps a discarded Status legal; this check keeps it
// *explained* — the call must have a comment on the same or the preceding
// line saying why the discard is safe.
class IgnoreErrorRationaleCheck : public ClangTidyCheck {
 public:
  using ClangTidyCheck::ClangTidyCheck;

  void registerMatchers(ast_matchers::MatchFinder *Finder) override {
    Finder->addMatcher(
        cxxMemberCallExpr(callee(cxxMethodDecl(hasName("IgnoreError"),
                                               ofClass(hasName(
                                                   "::pcube::Status")))))
            .bind("ignore"),
        this);
  }

  void check(const ast_matchers::MatchFinder::MatchResult &Result) override {
    const auto *Call = Result.Nodes.getNodeAs<CXXMemberCallExpr>("ignore");
    const SourceManager &SM = *Result.SourceManager;
    const SourceLocation Loc = Call->getExprLoc();
    if (HasRationaleNearby(SM, Loc)) return;
    diag(Loc,
         "`.IgnoreError()` without a rationale comment on this or the "
         "preceding line; say why discarding the Status is safe");
  }
};

}  // namespace

// ---- Module registration --------------------------------------------------

class PCubeLintModule : public ClangTidyModule {
 public:
  void addCheckFactories(ClangTidyCheckFactories &CheckFactories) override {
    CheckFactories.registerCheck<MutationEntryCheck>("pcube-mutation-entry");
    CheckFactories.registerCheck<WireNoAbortCheck>("pcube-wire-no-abort");
    CheckFactories.registerCheck<GuardedByCompletenessCheck>(
        "pcube-guarded-by-completeness");
    CheckFactories.registerCheck<IgnoreErrorRationaleCheck>(
        "pcube-ignore-error-rationale");
  }
};

static ClangTidyModuleRegistry::Add<PCubeLintModule> X(
    "pcube-lint-module", "pcube architecture-invariant checks");

}  // namespace pcube_lint

// Anchor so -load keeps the module object file alive.
volatile int PCubeLintModuleAnchorSource = 0;

}  // namespace tidy
}  // namespace clang
