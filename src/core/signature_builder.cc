#include "core/signature_builder.h"

namespace pcube {

Result<PathTable> PathTable::Collect(const RStarTree& tree) {
  PathTable table;
  table.paths_.resize(tree.num_entries());
  Status st = tree.CollectPaths(
      [&](TupleId tid, const Path& p, std::span<const float>) {
        if (tid >= table.paths_.size()) table.paths_.resize(tid + 1);
        table.paths_[tid] = p;
      });
  if (!st.ok()) return st;
  return table;
}

std::vector<Signature> BuildAtomicCuboidSignatures(const Dataset& data,
                                                   const PathTable& paths,
                                                   int dim, uint32_t fanout,
                                                   int levels) {
  uint32_t card = data.schema().bool_cardinality[dim];
  std::vector<Signature> sigs;
  sigs.reserve(card);
  for (uint32_t v = 0; v < card; ++v) sigs.emplace_back(fanout, levels);
  for (TupleId t = 0; t < data.num_tuples(); ++t) {
    if (!paths.contains(t)) continue;  // tombstoned: not in the tree
    sigs[data.BoolValue(t, dim)].SetPath(paths.path(t));
  }
  return sigs;
}

Signature BuildCellSignature(const Dataset& data, const PathTable& paths,
                             const PredicateSet& preds, uint32_t fanout,
                             int levels) {
  Signature sig(fanout, levels);
  for (TupleId t = 0; t < data.num_tuples(); ++t) {
    if (!paths.contains(t)) continue;  // tombstoned: not in the tree
    if (preds.Matches(data, t)) sig.SetPath(paths.path(t));
  }
  return sig;
}

}  // namespace pcube
