// Concurrent query driver (the throughput path of the ROADMAP's
// production-scale goal). A batch of parsed top-k / skyline queries fans out
// over a ThreadPool; every query runs Algorithm 1 independently against ONE
// shared, immutable PCube + RStarTree through the striped BufferPool. Each
// worker builds its own BooleanProbe and engine (those stay single-threaded
// per query); the only cross-thread state is the buffer pool and the IoStats
// counters, both thread-safe. Results come back in input order together with
// per-query and merged physical-I/O counters.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/thread_pool.h"
#include "core/pcube.h"
#include "query/query_types.h"
#include "query/ranking.h"
#include "query/skyline_engine.h"
#include "query/topk_engine.h"
#include "rtree/rstar_tree.h"

namespace pcube {

/// One parsed query of a batch.
struct BatchQuery {
  enum class Kind { kSkyline, kTopK };

  Kind kind = Kind::kSkyline;
  PredicateSet preds;

  /// kSkyline: preference dims / k-skyband / dynamic-skyline origin.
  SkylineQueryOptions skyline;

  /// kTopK: ranking function (shared_ptr so a batch can reuse one function
  /// across queries; read concurrently, so it must stay immutable) and k.
  std::shared_ptr<const RankingFunction> ranking;
  size_t k = 10;

  static BatchQuery Skyline(PredicateSet preds,
                            SkylineQueryOptions options = {}) {
    BatchQuery q;
    q.kind = Kind::kSkyline;
    q.preds = std::move(preds);
    q.skyline = std::move(options);
    return q;
  }

  static BatchQuery TopK(PredicateSet preds,
                         std::shared_ptr<const RankingFunction> f, size_t k) {
    BatchQuery q;
    q.kind = Kind::kTopK;
    q.preds = std::move(preds);
    q.ranking = std::move(f);
    q.k = k;
    return q;
  }
};

/// Outcome of one query of a batch (exactly one of skyline/topk is set on
/// success, matching the query's kind).
struct BatchQueryResult {
  Status status;
  std::optional<SkylineOutput> skyline;
  std::optional<TopKOutput> topk;
  /// Physical page I/O performed by this query (per-thread attribution; a
  /// page one query faults in and another then hits is charged to the
  /// faulting query, exactly like the sequential accounting).
  IoStats io;
  double seconds = 0;  ///< wall time of this query on its worker
};

/// A completed batch: per-query results in input order plus merged counters.
struct BatchOutput {
  std::vector<BatchQueryResult> results;
  IoStats io;              ///< sum of every query's physical I/O
  uint64_t failed = 0;     ///< queries whose status is not OK
  double seconds = 0;      ///< wall time of the whole batch
};

/// Fans batches of queries out over a thread pool. The tree, cube and pool
/// must outlive the executor and must not be mutated while a batch runs.
class BatchExecutor {
 public:
  BatchExecutor(const RStarTree* tree, const PCube* cube, ThreadPool* pool)
      : tree_(tree), cube_(cube), pool_(pool) {}

  /// Runs every query to completion; individual failures are reported in the
  /// per-query status, never by aborting the batch.
  BatchOutput Execute(const std::vector<BatchQuery>& queries);

 private:
  BatchQueryResult RunOne(const BatchQuery& query) const;

  const RStarTree* tree_;
  const PCube* cube_;
  ThreadPool* pool_;
};

}  // namespace pcube
