#include "storage/buffer_pool.h"

namespace pcube {

PageHandle& PageHandle::operator=(PageHandle&& o) noexcept {
  if (this != &o) {
    Release();
    pool_ = o.pool_;
    pid_ = o.pid_;
    page_ = o.page_;
    o.pool_ = nullptr;
    o.page_ = nullptr;
    o.pid_ = kInvalidPageId;
  }
  return *this;
}

void PageHandle::Release() {
  if (pool_ != nullptr && page_ != nullptr) {
    pool_->Unpin(pid_);
  }
  pool_ = nullptr;
  page_ = nullptr;
  pid_ = kInvalidPageId;
}

BufferPool::BufferPool(PageManager* pm, size_t capacity_pages, IoStats* stats)
    : pm_(pm), capacity_(capacity_pages < 1 ? 1 : capacity_pages), stats_(stats) {}

void BufferPool::Unpin(PageId pid) {
  auto it = frames_.find(pid);
  PCUBE_DCHECK(it != frames_.end());
  PCUBE_DCHECK_GT(it->second.pins, 0);
  --it->second.pins;
}

Status BufferPool::EvictOne() {
  // Scan from the LRU tail for the first unpinned frame. If all frames are
  // pinned, grow instead of failing.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    PageId victim = *it;
    auto fit = frames_.find(victim);
    PCUBE_DCHECK(fit != frames_.end());
    if (fit->second.pins > 0) continue;
    if (fit->second.dirty) {
      PCUBE_RETURN_NOT_OK(pm_->Write(victim, fit->second.page));
      if (stats_ != nullptr) stats_->CountWrite(fit->second.cat);
    }
    lru_.erase(std::next(it).base());
    frames_.erase(fit);
    return Status::OK();
  }
  return Status::OK();  // everything pinned: grow
}

Result<BufferPool::Frame*> BufferPool::GetFrame(PageId pid, IoCategory cat,
                                                bool load) {
  auto it = frames_.find(pid);
  if (it != frames_.end()) {
    ++hits_;
    lru_.erase(it->second.lru_pos);
    lru_.push_front(pid);
    it->second.lru_pos = lru_.begin();
    return &it->second;
  }
  ++misses_;
  if (frames_.size() >= capacity_) {
    PCUBE_RETURN_NOT_OK(EvictOne());
  }
  lru_.push_front(pid);
  Frame& frame = frames_[pid];
  frame.lru_pos = lru_.begin();
  frame.cat = cat;
  if (load) {
    Status st = pm_->Read(pid, &frame.page);
    if (!st.ok()) {
      lru_.pop_front();
      frames_.erase(pid);
      return st;
    }
    if (stats_ != nullptr) stats_->CountRead(cat);
  } else {
    frame.page.Zero();
  }
  return &frame;
}

Result<PageHandle> BufferPool::Get(PageId pid, IoCategory cat) {
  auto frame = GetFrame(pid, cat, /*load=*/true);
  if (!frame.ok()) return frame.status();
  ++(*frame)->pins;
  return PageHandle(this, pid, &(*frame)->page);
}

Result<PageHandle> BufferPool::GetMutable(PageId pid, IoCategory cat) {
  auto frame = GetFrame(pid, cat, /*load=*/true);
  if (!frame.ok()) return frame.status();
  (*frame)->dirty = true;
  (*frame)->cat = cat;
  ++(*frame)->pins;
  return PageHandle(this, pid, &(*frame)->page);
}

Result<PageHandle> BufferPool::New(IoCategory cat, PageId* pid) {
  auto alloc = pm_->Allocate();
  if (!alloc.ok()) return alloc.status();
  *pid = *alloc;
  auto frame = GetFrame(*pid, cat, /*load=*/false);
  if (!frame.ok()) return frame.status();
  --misses_;  // a fresh page is not a disk read
  if (stats_ != nullptr) {
    // GetFrame(load=false) performs no physical read, nothing to undo there.
  }
  (*frame)->dirty = true;
  ++(*frame)->pins;
  return PageHandle(this, *pid, &(*frame)->page);
}

Status BufferPool::FlushAll() {
  for (auto& [pid, frame] : frames_) {
    if (frame.dirty) {
      PCUBE_RETURN_NOT_OK(pm_->Write(pid, frame.page));
      if (stats_ != nullptr) stats_->CountWrite(frame.cat);
      frame.dirty = false;
    }
  }
  return Status::OK();
}

Status BufferPool::FreePage(PageId pid) {
  auto it = frames_.find(pid);
  if (it != frames_.end()) {
    PCUBE_CHECK_EQ(it->second.pins, 0) << "freeing a pinned page";
    lru_.erase(it->second.lru_pos);
    frames_.erase(it);
  }
  return pm_->Free(pid);
}

Status BufferPool::Clear() {
  PCUBE_RETURN_NOT_OK(FlushAll());
  for ([[maybe_unused]] auto& [pid, frame] : frames_) {
    PCUBE_CHECK_EQ(frame.pins, 0) << "Clear() with outstanding pins";
  }
  frames_.clear();
  lru_.clear();
  return Status::OK();
}

}  // namespace pcube
