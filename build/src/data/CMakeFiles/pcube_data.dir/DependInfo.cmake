
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/covertype.cc" "src/data/CMakeFiles/pcube_data.dir/covertype.cc.o" "gcc" "src/data/CMakeFiles/pcube_data.dir/covertype.cc.o.d"
  "/root/repo/src/data/csv.cc" "src/data/CMakeFiles/pcube_data.dir/csv.cc.o" "gcc" "src/data/CMakeFiles/pcube_data.dir/csv.cc.o.d"
  "/root/repo/src/data/generators.cc" "src/data/CMakeFiles/pcube_data.dir/generators.cc.o" "gcc" "src/data/CMakeFiles/pcube_data.dir/generators.cc.o.d"
  "/root/repo/src/data/table1.cc" "src/data/CMakeFiles/pcube_data.dir/table1.cc.o" "gcc" "src/data/CMakeFiles/pcube_data.dir/table1.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pcube_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cube/CMakeFiles/pcube_cube.dir/DependInfo.cmake"
  "/root/repo/build/src/rtree/CMakeFiles/pcube_rtree.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/pcube_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
