// BufferPool tests: hit/miss accounting, eviction with write-back, pinning,
// cold restarts.
#include <gtest/gtest.h>

#include "storage/buffer_pool.h"

namespace pcube {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  MemoryPageManager pm_;
  IoStats stats_;
};

TEST_F(BufferPoolTest, NewPagesAreZeroedAndNotCountedAsReads) {
  BufferPool pool(&pm_, 4, &stats_);
  PageId pid;
  auto h = pool.New(IoCategory::kHeapFile, &pid);
  ASSERT_TRUE(h.ok());
  for (size_t i = 0; i < kPageSize; ++i) EXPECT_EQ((*h)->bytes[i], 0);
  EXPECT_EQ(stats_.TotalReads(), 0u);
}

TEST_F(BufferPoolTest, HitsAreFreeMissesCharge) {
  BufferPool pool(&pm_, 4, &stats_);
  PageId pid;
  { auto h = pool.New(IoCategory::kRtreeBlock, &pid); ASSERT_TRUE(h.ok()); }
  ASSERT_TRUE(pool.Clear().ok());
  stats_.Reset();

  { auto h = pool.Get(pid, IoCategory::kRtreeBlock); ASSERT_TRUE(h.ok()); }
  EXPECT_EQ(stats_.ReadCount(IoCategory::kRtreeBlock), 1u);
  { auto h = pool.Get(pid, IoCategory::kRtreeBlock); ASSERT_TRUE(h.ok()); }
  EXPECT_EQ(stats_.ReadCount(IoCategory::kRtreeBlock), 1u);  // cached
  EXPECT_EQ(pool.hits(), 1u);
}

TEST_F(BufferPoolTest, EvictionWritesBackDirtyFrames) {
  BufferPool pool(&pm_, 2, &stats_);
  PageId a, b, c;
  {
    auto h = pool.New(IoCategory::kHeapFile, &a);
    ASSERT_TRUE(h.ok());
    (*h)->bytes[0] = 42;
  }
  { auto h = pool.New(IoCategory::kHeapFile, &b); ASSERT_TRUE(h.ok()); }
  // Third page forces eviction of `a` (LRU), which must write back.
  { auto h = pool.New(IoCategory::kHeapFile, &c); ASSERT_TRUE(h.ok()); }
  Page raw;
  ASSERT_TRUE(pm_.Read(a, &raw).ok());
  EXPECT_EQ(raw.bytes[0], 42);
}

TEST_F(BufferPoolTest, PinnedFramesSurviveEvictionPressure) {
  BufferPool pool(&pm_, 2, &stats_);
  PageId a;
  auto pinned = pool.New(IoCategory::kHeapFile, &a);
  ASSERT_TRUE(pinned.ok());
  (*pinned)->bytes[0] = 7;
  // Flood the pool far past capacity while `a` stays pinned.
  for (int i = 0; i < 10; ++i) {
    PageId p;
    auto h = pool.New(IoCategory::kHeapFile, &p);
    ASSERT_TRUE(h.ok());
  }
  // The pinned frame is still the same memory and still mutable.
  (*pinned)->bytes[1] = 8;
  pinned->Release();
  ASSERT_TRUE(pool.FlushAll().ok());
  Page raw;
  ASSERT_TRUE(pm_.Read(a, &raw).ok());
  EXPECT_EQ(raw.bytes[0], 7);
  EXPECT_EQ(raw.bytes[1], 8);
}

TEST_F(BufferPoolTest, ClearFlushesAndEmpties) {
  BufferPool pool(&pm_, 8, &stats_);
  PageId a;
  {
    auto h = pool.New(IoCategory::kBtree, &a);
    ASSERT_TRUE(h.ok());
    (*h)->bytes[5] = 11;
  }
  ASSERT_TRUE(pool.Clear().ok());
  Page raw;
  ASSERT_TRUE(pm_.Read(a, &raw).ok());
  EXPECT_EQ(raw.bytes[5], 11);
  // Next access is a miss again (cold).
  stats_.Reset();
  { auto h = pool.Get(a, IoCategory::kBtree); ASSERT_TRUE(h.ok()); }
  EXPECT_EQ(stats_.ReadCount(IoCategory::kBtree), 1u);
}

TEST_F(BufferPoolTest, GetMutableMarksDirty) {
  BufferPool pool(&pm_, 4, &stats_);
  PageId a;
  { auto h = pool.New(IoCategory::kHeapFile, &a); ASSERT_TRUE(h.ok()); }
  ASSERT_TRUE(pool.Clear().ok());
  {
    auto h = pool.GetMutable(a, IoCategory::kHeapFile);
    ASSERT_TRUE(h.ok());
    (*h)->bytes[9] = 99;
  }
  ASSERT_TRUE(pool.Clear().ok());
  Page raw;
  ASSERT_TRUE(pm_.Read(a, &raw).ok());
  EXPECT_EQ(raw.bytes[9], 99);
}

TEST_F(BufferPoolTest, MoveHandleTransfersPin) {
  BufferPool pool(&pm_, 2, &stats_);
  PageId a;
  auto h = pool.New(IoCategory::kHeapFile, &a);
  ASSERT_TRUE(h.ok());
  PageHandle moved = std::move(*h);
  EXPECT_TRUE(moved.valid());
  EXPECT_FALSE(h->valid());
  moved.Release();
  ASSERT_TRUE(pool.Clear().ok());  // would abort if a pin leaked
}

}  // namespace
}  // namespace pcube
