// Runtime SIMD dispatch for the kernel layer (DESIGN.md §12). The hot inner
// loops — bitmap word algebra, WAH intersection, batched dominance — each
// ship a portable scalar implementation and an AVX2 one compiled via the
// GCC/Clang `target("avx2")` function attribute (no -mavx2 on the whole
// translation unit, so the binary stays runnable on any x86-64 and the
// non-x86 build never sees intrinsics). The level is detected once per
// process with CPUID and every kernel entry point indirects through it.
//
// Controls, in priority order:
//   - CMake -DPCUBE_SIMD=OFF compiles the vector paths out entirely
//     (defines PCUBE_SIMD_DISABLED; dispatch always answers kScalar).
//   - env PCUBE_SIMD_LEVEL=scalar|avx2 clamps the detected level at process
//     start (A/B debugging; requesting a level the CPU lacks falls back to
//     the best supported one).
//
// Observability: ActiveSimdLevel() publishes the `pcube_simd_level` gauge
// (numeric value of the enum) on first use, and each dispatching kernel
// counts invocations in pcube_simd_kernel_calls_total{kernel="..."}.
#pragma once

namespace pcube::simd {

/// Instruction-set tier a kernel can run at. Numeric values are stable —
/// they are exported through the pcube_simd_level gauge (1 is reserved for
/// an SSE/NEON tier if one is ever added).
enum class SimdLevel : int {
  kScalar = 0,
  kAvx2 = 2,
};

/// The level every dispatching kernel uses, resolved once per process:
/// CPUID detection, clamped by PCUBE_SIMD_LEVEL, forced to kScalar when the
/// build disabled SIMD. Publishes the pcube_simd_level gauge as a side
/// effect of the first call.
SimdLevel ActiveSimdLevel();

/// "scalar" / "avx2" — CLI and metrics label text.
const char* SimdLevelName(SimdLevel level);

/// True when this CPU (and build) can execute the AVX2 kernels, regardless
/// of any env clamp — the differential tests use it to decide whether the
/// AVX2 variants are runnable.
bool CpuSupportsAvx2();

/// Parses a PCUBE_SIMD_LEVEL value ("scalar"/"avx2", case-sensitive).
/// Returns false on unrecognised text (caller keeps the detected level).
/// Exposed for tests; ActiveSimdLevel() applies it to the real env var.
bool ParseSimdLevel(const char* text, SimdLevel* out);

}  // namespace pcube::simd
