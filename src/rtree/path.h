// Tuple paths and signature IDs (paper §IV.B.1).
//
// Every tuple is associated with a unique path <p0, p1, ..., pd> of 1-based
// slot positions from the R-tree root down to its leaf entry. An l-level
// node's path is the length-l prefix; nodes map one-to-one to SIDs via
//
//     SID = sum_i p_i * (M+1)^(l-1-i)
//
// (the paper's worked example: M = 2, root SID = 0, node N1 = <1> -> 1,
// node N3 = <1,1> -> 4). Partial signatures are keyed by the SID of their
// subtree root.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"

namespace pcube {

/// 1-based slot positions from the root; element i addresses the slot taken
/// at depth i. A tuple path's last element is its leaf slot.
using Path = std::vector<uint16_t>;

/// Signature ID of the node addressed by `path` in a tree of fanout `M`.
/// The empty path (the root) maps to 0.
inline uint64_t PathToSid(const Path& path, uint32_t M) {
  uint64_t sid = 0;
  const uint64_t base = M + 1;
  for (uint16_t p : path) {
    PCUBE_DCHECK_GE(p, 1);
    PCUBE_DCHECK_LE(p, M);
    PCUBE_DCHECK_LT(sid, (uint64_t{1} << 58) / base);  // overflow guard
    sid = sid * base + p;
  }
  return sid;
}

/// Inverse of PathToSid given the node's level (path length).
inline Path SidToPath(uint64_t sid, uint32_t M, int level) {
  Path path(level);
  const uint64_t base = M + 1;
  for (int i = level - 1; i >= 0; --i) {
    path[i] = static_cast<uint16_t>(sid % base);
    sid /= base;
  }
  PCUBE_DCHECK_EQ(sid, 0u);
  return path;
}

inline std::string PathToString(const Path& path) {
  std::string s = "<";
  for (size_t i = 0; i < path.size(); ++i) {
    if (i > 0) s += ",";
    s += std::to_string(path[i]);
  }
  return s + ">";
}

using TupleId = uint64_t;  // same alias as in cube/relation.h

/// One tuple whose path changed during an R-tree update (paper §IV.B.3).
/// Inserts have no old path; deletes have no new path; split/re-insert moves
/// have both.
struct PathChange {
  TupleId tid = 0;
  std::vector<float> point;
  bool has_old = false;
  bool has_new = false;
  /// Set when the tuple was removed from the tree (Delete).
  bool deleted = false;
  Path old_path;
  Path new_path;
};

/// All path changes caused by one logical update. If `root_split` is set,
/// every tuple's path changed (a new level was added) and consumers should
/// fall back to recomputation for unlisted tuples.
struct PathChangeSet {
  std::vector<PathChange> changes;
  bool root_split = false;

  void Clear() {
    changes.clear();
    root_split = false;
  }
};

}  // namespace pcube
