# Empty compiler generated dependencies file for used_cars.
# This may be replaced when dependencies are built.
