// 32-byte-aligned storage for kernel operands. The AVX2 kernels read their
// inputs with aligned 256-bit loads whenever the base pointer allows it, so
// every word array that can reach a kernel — BitVector words, FragmentCache
// blocks, DominanceWindow columns — allocates through this allocator. That
// is the "alignment contract" of DESIGN.md §12: an AlignedVector's data()
// is always 32-byte aligned; kernels may rely on it for the base pointer
// (never for arbitrary interior offsets).
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace pcube::simd {

/// Minimal std::allocator replacement with a fixed alignment guarantee.
template <typename T, std::size_t Alignment = 32>
struct AlignedAllocator {
  static_assert(Alignment >= alignof(T) && (Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two >= alignof(T)");
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  explicit AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

/// std::vector whose data() is 32-byte aligned.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T, 32>>;

}  // namespace pcube::simd
