// Data generator tests: determinism, distribution shapes, Table I fidelity,
// CoverType surrogate cardinalities.
#include <gtest/gtest.h>

#include <set>

#include "data/covertype.h"
#include "data/generators.h"
#include "data/table1.h"
#include "query/reference.h"

namespace pcube {
namespace {

TEST(GeneratorsTest, DeterministicInSeed) {
  SyntheticConfig config;
  config.num_tuples = 500;
  config.seed = 5;
  Dataset a = GenerateSynthetic(config);
  Dataset b = GenerateSynthetic(config);
  config.seed = 6;
  Dataset c = GenerateSynthetic(config);
  bool same = true, differs = false;
  for (TupleId t = 0; t < 500; ++t) {
    for (int d = 0; d < a.num_pref(); ++d) {
      same &= a.PrefValue(t, d) == b.PrefValue(t, d);
      differs |= a.PrefValue(t, d) != c.PrefValue(t, d);
    }
  }
  EXPECT_TRUE(same);
  EXPECT_TRUE(differs);
}

TEST(GeneratorsTest, BoundsAndCardinalities) {
  SyntheticConfig config;
  config.num_tuples = 3000;
  config.num_bool = 4;
  config.bool_cardinality = 17;
  config.seed = 7;
  for (auto dist : {PrefDistribution::kUniform, PrefDistribution::kCorrelated,
                    PrefDistribution::kAntiCorrelated}) {
    config.dist = dist;
    Dataset data = GenerateSynthetic(config);
    for (TupleId t = 0; t < data.num_tuples(); ++t) {
      for (int d = 0; d < data.num_bool(); ++d) {
        EXPECT_LT(data.BoolValue(t, d), 17u);
      }
      for (int d = 0; d < data.num_pref(); ++d) {
        EXPECT_GE(data.PrefValue(t, d), 0.0f);
        EXPECT_LE(data.PrefValue(t, d), 1.0f);
      }
    }
  }
}

TEST(GeneratorsTest, DistributionsOrderSkylineSizes) {
  // The canonical property [2]: |skyline(correlated)| < |skyline(uniform)|
  // < |skyline(anti-correlated)|.
  SyntheticConfig config;
  config.num_tuples = 8000;
  config.num_bool = 1;
  config.num_pref = 3;
  config.seed = 8;
  auto skyline_size = [&](PrefDistribution dist) {
    config.dist = dist;
    Dataset data = GenerateSynthetic(config);
    return NaiveSkyline(data, {}).size();
  };
  size_t corr = skyline_size(PrefDistribution::kCorrelated);
  size_t unif = skyline_size(PrefDistribution::kUniform);
  size_t anti = skyline_size(PrefDistribution::kAntiCorrelated);
  EXPECT_LT(corr, unif);
  EXPECT_LT(unif, anti);
}

TEST(Table1Test, MatchesPaperRows) {
  Dataset data = MakeTable1Dataset();
  EXPECT_EQ(data.num_tuples(), 8u);
  EXPECT_EQ(data.num_bool(), 2);
  EXPECT_EQ(data.num_pref(), 2);
  // Spot-check rows against Table I: t1 = (a1, b1, 0.00, 0.40).
  EXPECT_EQ(data.BoolValue(0, kTable1DimA), 0u);
  EXPECT_EQ(data.BoolValue(0, kTable1DimB), 0u);
  EXPECT_FLOAT_EQ(data.PrefValue(0, 0), 0.00f);
  EXPECT_FLOAT_EQ(data.PrefValue(0, 1), 0.40f);
  // t8 = (a3, b3, 0.85, 0.62).
  EXPECT_EQ(data.BoolValue(7, kTable1DimA), 2u);
  EXPECT_EQ(data.BoolValue(7, kTable1DimB), 2u);
  EXPECT_FLOAT_EQ(data.PrefValue(7, 0), 0.85f);
  // Paths are exactly the Table I column.
  auto entries = Table1TreeEntries();
  EXPECT_EQ(std::get<2>(entries[0]), (Path{1, 1, 1}));
  EXPECT_EQ(std::get<2>(entries[4]), (Path{2, 1, 1}));
  EXPECT_EQ(std::get<2>(entries[7]), (Path{2, 2, 2}));
}

TEST(CoverTypeTest, SurrogateMatchesPublishedShape) {
  CoverTypeConfig config;
  config.num_tuples = 20000;  // scaled for test speed
  Dataset data = GenerateCoverTypeSurrogate(config);
  ASSERT_EQ(data.num_bool(), 12);
  ASSERT_EQ(data.num_pref(), 3);
  const auto& cards = CoverTypeBoolCardinalities();
  EXPECT_EQ(cards[0], 255u);
  EXPECT_EQ(cards[4], 7u);
  EXPECT_EQ(cards[11], 2u);
  // Values stay within cardinality; binary dimensions use both values.
  for (int d = 0; d < 12; ++d) {
    std::set<uint32_t> seen;
    for (TupleId t = 0; t < data.num_tuples(); ++t) {
      uint32_t v = data.BoolValue(t, d);
      EXPECT_LT(v, cards[d]);
      seen.insert(v);
    }
    if (cards[d] == 2) {
      EXPECT_EQ(seen.size(), 2u);
    }
  }
  // Preference values sit on the published grids.
  const auto& pref_cards = CoverTypePrefCardinalities();
  for (TupleId t = 0; t < 200; ++t) {
    for (int d = 0; d < 3; ++d) {
      float v = data.PrefValue(t, d);
      float grid = v * pref_cards[d];
      EXPECT_NEAR(grid, std::round(grid), 1e-3);
    }
  }
}

TEST(CoverTypeTest, SkewedBooleanDistribution) {
  CoverTypeConfig config;
  config.num_tuples = 30000;
  Dataset data = GenerateCoverTypeSurrogate(config);
  // Dimension 0 (card 255) must be skewed: the most frequent decile of
  // values holds far more than 10% of the mass.
  std::vector<uint64_t> counts(255, 0);
  for (TupleId t = 0; t < data.num_tuples(); ++t) {
    ++counts[data.BoolValue(t, 0)];
  }
  uint64_t low_decile = 0;
  for (int v = 0; v < 26; ++v) low_decile += counts[v];
  EXPECT_GT(low_decile, data.num_tuples() / 5);
}

}  // namespace
}  // namespace pcube
