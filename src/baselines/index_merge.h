// Index-merge baseline for top-k (paper §VI.A, after Xin et al. [14]):
// join the per-dimension B+-tree indices for the boolean predicates into a
// RID set, then run best-first search with the reformulated ranking function
// — a tuple outside the RID set scores MAX, i.e. it is skipped at tuple
// level, but R-tree nodes cannot be boolean-pruned because the merge happens
// on tuple ids, not on the space partition. The paper's observation: "Index
// Merge joins the search space online, while the signature materializes the
// joint space offline."
#pragma once

#include <unordered_set>

#include "core/probe.h"
#include "query/topk_engine.h"
#include "storage/boolean_index.h"

namespace pcube {

/// Probe over a merged RID set: node paths always pass, tuples pass iff
/// their id survived the index merge.
class RidSetProbe : public BooleanProbe {
 public:
  explicit RidSetProbe(std::unordered_set<TupleId> rids)
      : rids_(std::move(rids)) {}

  Result<bool> Test(const Path&) override { return true; }
  Result<bool> TestData(const Path&, TupleId tid) override {
    return rids_.count(tid) > 0;
  }

 private:
  std::unordered_set<TupleId> rids_;
};

/// Progressive index-merge top-k: merges the predicate postings, then runs
/// the best-first framework with tuple-level filtering only.
Result<TopKOutput> IndexMergeTopK(const RStarTree& tree,
                                  const std::vector<BooleanIndex>& indices,
                                  const PredicateSet& preds,
                                  const RankingFunction& f, size_t k);

}  // namespace pcube
