// Compile-fail case: touching a GUARDED_BY field without holding its mutex
// must not build under Clang's thread-safety analysis.
// Clean variant: the access happens under a MutexLock.
// Faulty variant (-DPCUBE_COMPILE_FAIL): the lock is omitted and
// -Werror=thread-safety rejects the access (Clang only; skipped on GCC).
#include "common/mutex.h"

namespace {

class Tally {
 public:
  void Bump() {
#ifdef PCUBE_COMPILE_FAIL
    ++n_;
#else
    pcube::MutexLock lock(&mu_);
    ++n_;
#endif
  }

 private:
  pcube::Mutex mu_;
  int n_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Tally t;
  t.Bump();
  return 0;
}
