// Boolean-first baseline (paper §VI.A, "Boolean"): answer the boolean
// predicates first — by B+-tree index scan or full table scan, whichever is
// cheaper — then run the preference analysis over the selected tuples in
// memory. This is what a conventional DBMS does, and the approach P-Cube is
// measured against in Figs. 8-14.
#pragma once

#include <unordered_set>
#include <vector>

#include "cube/cell.h"
#include "query/query_types.h"
#include "query/ranking.h"
#include "storage/boolean_index.h"
#include "storage/table_store.h"

namespace pcube {

/// Result of a boolean-first query.
struct BooleanFirstOutput {
  std::vector<TupleId> tids;          ///< result tuples (skyline or top-k)
  std::vector<double> scores;         ///< top-k only, aligned with tids
  uint64_t selected = 0;              ///< tuples passing the predicates
  bool used_table_scan = false;       ///< chosen access path
  EngineCounters counters;            ///< heap_peak = in-memory working set
};

/// Executes boolean-then-preference queries.
class BooleanFirstExecutor {
 public:
  /// `indices` holds one BooleanIndex per boolean dimension (dimension d at
  /// position d). `tombstones`, when non-null, lists tuples deleted through
  /// the write path but still present in the heap file and indices — Select
  /// filters them out. All referees must outlive the executor.
  BooleanFirstExecutor(const std::vector<BooleanIndex>* indices,
                       const TableStore* table,
                       const std::unordered_set<TupleId>* tombstones = nullptr)
      : indices_(indices), table_(table), tombstones_(tombstones) {}

  /// Skyline over the selected subset (pref_dims empty = all dimensions).
  Result<BooleanFirstOutput> Skyline(const PredicateSet& preds,
                                     std::vector<int> pref_dims = {});

  /// Top-k over the selected subset.
  Result<BooleanFirstOutput> TopK(const PredicateSet& preds,
                                  const RankingFunction& f, size_t k);

 private:
  /// Fetches all tuples satisfying `preds`, choosing index scan vs table
  /// scan by estimated page cost (the paper reports the best of the two).
  Result<std::vector<TupleData>> Select(const PredicateSet& preds,
                                        BooleanFirstOutput* out);

  /// True when `tid` has not been deleted.
  bool Live(TupleId tid) const {
    return tombstones_ == nullptr || tombstones_->count(tid) == 0;
  }

  const std::vector<BooleanIndex>* indices_;
  const TableStore* table_;
  const std::unordered_set<TupleId>* tombstones_;
};

}  // namespace pcube
