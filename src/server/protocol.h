// Wire protocol of `pcube serve` (DESIGN.md §14): a length-prefixed binary
// framing over TCP. Every frame is a fixed 12-byte little-endian header —
// magic, version, frame type, payload length — followed by the payload.
// A client sends one kQuery frame per request; the server answers with a
// kResultHeader frame, zero or more kResultChunk frames (the result stream,
// so a million-tuple answer never materialises as one allocation on the
// wire), and a terminating kDone — or a single kError frame carrying a
// status code and message.
//
// The decoder trusts NOTHING from the wire: every length is bounds-checked
// against both the payload and a hard cap (frame size, predicate and
// dimension counts, tenant and message lengths, k), every float must be
// finite, and ranking parameters are validated against the constructor
// contracts of ranking.h (which PCUBE_CHECK-abort on violation — a remote
// peer must never be able to reach those checks). Malformed input yields
// Status::Corruption / Status::InvalidArgument, never UB; the fuzz tests in
// tests/server_protocol_test.cc run the decoder under ASan/UBSan over
// truncations, bit flips and garbage.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/request.h"
#include "query/write_batch.h"

namespace pcube::wire {

/// First four payload bytes of every frame, "PCUB" read little-endian.
inline constexpr uint32_t kMagic = 0x42554350u;
inline constexpr uint8_t kVersion = 1;
inline constexpr size_t kHeaderBytes = 12;

/// Hard caps the parser enforces on anything the peer controls.
inline constexpr uint32_t kMaxPayload = 1u << 20;  // 1 MiB per frame
inline constexpr size_t kMaxPredicates = 64;
inline constexpr size_t kMaxDims = 64;
inline constexpr uint16_t kMaxDimIndex = 4095;
inline constexpr size_t kMaxTenantBytes = 64;
inline constexpr size_t kMaxErrorBytes = 512;
inline constexpr uint64_t kMaxK = 1'000'000;
inline constexpr uint64_t kMaxSkybandK = 1'000'000;
inline constexpr uint64_t kMaxDeadlineMs = 3'600'000;  // one hour
/// Tuples per kResultChunk frame (chunk payloads stay far below kMaxPayload).
inline constexpr size_t kChunkTuples = 4096;
/// Client-side cap on the total result stream (defends the CLIENT against a
/// malicious or broken server announcing an absurd result count).
inline constexpr uint64_t kMaxResultTuples = 1ull << 26;

enum class FrameType : uint8_t {
  kQuery = 1,        ///< client -> server: one serialized QueryRequest
  kResultHeader = 2, ///< server -> client: result metadata, starts a stream
  kResultChunk = 3,  ///< server -> client: a slice of tids (+ scores)
  kDone = 4,         ///< server -> client: end of the result stream
  kError = 5,        ///< either direction: status code + message, ends req
  kWrite = 6,        ///< client -> server: one serialized WriteBatch
  kWriteAck = 7,     ///< server -> client: the WriteResult of a kWrite
};

struct FrameHeader {
  uint8_t version = kVersion;
  FrameType type = FrameType::kError;
  uint32_t payload_len = 0;
};

/// StatusCode <-> wire byte. The wire values are part of the protocol and
/// may not be renumbered; unknown bytes decode to kInternal (a frame from a
/// newer peer must not crash an older one).
uint8_t StatusCodeToWire(StatusCode code);
StatusCode StatusCodeFromWire(uint8_t wire);

/// Everything a kQuery frame carries besides the QueryRequest itself.
struct QueryEnvelope {
  std::string tenant;  ///< validated [A-Za-z0-9_.-]{0,64}; "" = "default"
  QueryRequest request;
};

/// Everything a kWrite frame carries besides the WriteBatch itself.
struct WriteEnvelope {
  std::string tenant;  ///< same validation as QueryEnvelope::tenant
  WriteBatch batch;
};

/// Result metadata sent ahead of the chunk stream.
struct ResultHeader {
  uint64_t trace_id = 0;
  uint64_t result_count = 0;
  bool has_scores = false;
  uint8_t plan = 0;   ///< PlanChoice as its enum value
  uint8_t cache = 0;  ///< CacheOutcome as its enum value
  bool degraded = false;
  uint32_t fanout_shards = 0;
  double seconds = 0;             ///< execution wall time on the server
  double queue_wait_seconds = 0;  ///< time between admission and execution
  uint64_t io_reads = 0;
  EngineCounters counters;
};

// ---- Frame building (always valid by construction) ----------------------

/// Appends a complete frame (header + payload) to `out`.
void AppendFrame(FrameType type, const std::string& payload, std::string* out);

/// Serializes a query (validating it against the wire caps first — a local
/// request that cannot be represented is InvalidArgument, not silent
/// truncation). Returns the payload for a kQuery frame.
Result<std::string> EncodeQuery(const QueryEnvelope& envelope);

std::string EncodeResultHeader(const ResultHeader& header);

/// Serializes a write batch for a kWrite frame. Batches that do not fit in
/// one frame (kMaxPayload) are InvalidArgument — chunk them client-side
/// (PCubeClient::Write does).
Result<std::string> EncodeWrite(const WriteEnvelope& envelope);

/// Payload of a kWriteAck frame.
std::string EncodeWriteAck(const WriteResult& result);

/// Encodes tuples [first, first + count) of the result vectors.
std::string EncodeResultChunk(const std::vector<TupleId>& tids,
                              const std::vector<double>& scores,
                              size_t first, size_t count);

/// Encodes an error payload; the message is truncated to kMaxErrorBytes.
std::string EncodeError(const Status& status);

// ---- Frame parsing (trusts nothing) --------------------------------------

/// Parses and validates a 12-byte header. `data` must hold kHeaderBytes.
Status ParseFrameHeader(const uint8_t* data, FrameHeader* out);

Status DecodeQuery(const uint8_t* data, size_t size, QueryEnvelope* out);
/// Batch contents are re-validated structurally by DecodeWriteBatch (caps,
/// finite floats, exact length); schema validation happens at Apply().
Status DecodeWrite(const uint8_t* data, size_t size, WriteEnvelope* out);
Status DecodeWriteAck(const uint8_t* data, size_t size, WriteResult* out);
Status DecodeResultHeader(const uint8_t* data, size_t size, ResultHeader* out);
/// Appends the chunk's tuples to `tids`/`scores`; `has_scores` must match
/// the stream's ResultHeader announcement.
Status DecodeResultChunk(const uint8_t* data, size_t size, bool has_scores,
                         std::vector<TupleId>* tids,
                         std::vector<double>* scores);
/// Reconstructs the Status an error frame carries.
Status DecodeError(const uint8_t* data, size_t size);

// ---- Blocking socket I/O -------------------------------------------------

/// Reads exactly `n` bytes (retrying short reads / EINTR). A clean close
/// mid-read is IoError("peer closed").
Status ReadExact(int fd, void* buf, size_t n);

/// Writes all `n` bytes with MSG_NOSIGNAL (a dead peer yields IoError, not
/// SIGPIPE).
Status WriteAll(int fd, const void* buf, size_t n);

/// Reads one frame: header (validated) then payload. Header-level damage
/// (bad magic/version/type, oversized payload) desynchronizes the byte
/// stream, so callers must close the connection after a non-OK return with
/// code kCorruption.
Status ReadFrame(int fd, FrameHeader* header, std::string* payload);

/// Writes one frame.
Status WriteFrame(int fd, FrameType type, const std::string& payload);

}  // namespace pcube::wire
