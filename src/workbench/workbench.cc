#include "workbench/workbench.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <unordered_set>

#include "workbench/catalog.h"
#include "workbench/planner.h"

namespace pcube {

namespace {
/// Rows the maintenance thread applies per structure-writer-lock slice:
/// bounds how long a slice can stall readers (fork_gc-style batching).
constexpr size_t kMaintenanceSliceRows = 4096;
}  // namespace

Result<std::unique_ptr<Workbench>> Workbench::Build(Dataset data,
                                                    WorkbenchOptions options) {
  std::unique_ptr<Workbench> wb(new Workbench());
  wb->data_ = std::move(data);
  if (options.file_path.empty()) {
    wb->pm_ = std::make_unique<MemoryPageManager>();
  } else {
    auto fpm = FilePageManager::Open(options.file_path, /*truncate=*/true);
    if (!fpm.ok()) return fpm.status();
    wb->pm_ = std::move(*fpm);
    // A stale sidecar from a previous database at this path must not
    // survive the truncation.
    std::remove((options.file_path + ".chk").c_str());
  }
  // Decorator stack, bottom-up: base -> fault injection -> checksums ->
  // latency. Faults sit below the checksum layer so injected corruption is
  // detected exactly like real corruption would be.
  if (options.fault_plan.enabled()) {
    auto wrapped = std::make_unique<FaultInjectingPageManager>(
        std::move(wb->pm_), options.fault_plan);
    wb->faults_ = wrapped.get();
    wb->faults_->set_armed(false);  // armed below, after construction
    wb->pm_ = std::move(wrapped);
  }
  if (options.verify_checksums) {
    auto wrapped = std::make_unique<ChecksumPageManager>(
        std::move(wb->pm_),
        options.file_path.empty() ? std::string() : options.file_path + ".chk");
    wb->checksums_ = wrapped.get();
    wb->pm_ = std::move(wrapped);
  }
  LatencyPageManager* latency = nullptr;
  if (options.read_latency_us > 0) {
    // Wrap at zero latency so the build itself stays fast; enabled below.
    auto wrapped = std::make_unique<LatencyPageManager>(std::move(wb->pm_));
    latency = wrapped.get();
    wb->pm_ = std::move(wrapped);
  }
  wb->pool_ = std::make_unique<BufferPool>(wb->pm_.get(), options.pool_pages,
                                           &wb->stats_, options.pool_stripes);
  if (!options.file_path.empty()) {
    // Reserve the catalog root before anything else so Open() can find it.
    auto handle = wb->pool_->New(IoCategory::kBtree, &wb->catalog_root_);
    if (!handle.ok()) return handle.status();
    PCUBE_CHECK_EQ(wb->catalog_root_, PageId{0});
  }
  if (options.build_table) {
    auto table = TableStore::Build(wb->pool_.get(), wb->data_);
    if (!table.ok()) return table.status();
    wb->table_ = std::make_unique<TableStore>(std::move(*table));
  }
  if (options.build_indices) {
    for (int d = 0; d < wb->data_.num_bool(); ++d) {
      auto index = BooleanIndex::Build(wb->pool_.get(), wb->data_, d);
      if (!index.ok()) return index.status();
      wb->indices_.push_back(std::move(*index));
    }
  }
  RTreeOptions rtree_options = options.rtree;
  rtree_options.dims = wb->data_.num_pref();
  wb->rtree_options_ = rtree_options;
  auto tree =
      options.grid_cells_per_dim > 0
          ? RStarTree::BuildGridPartition(wb->pool_.get(), wb->data_,
                                          rtree_options,
                                          options.grid_cells_per_dim)
          : (options.rtree_by_insertion
                 ? RStarTree::BuildByInsertion(wb->pool_.get(), wb->data_,
                                               rtree_options)
                 : RStarTree::BulkLoad(wb->pool_.get(), wb->data_,
                                       rtree_options));
  if (!tree.ok()) return tree.status();
  wb->tree_ = std::make_unique<RStarTree>(std::move(*tree));
  if (options.build_cube) {
    auto cube = PCube::Build(wb->pool_.get(), wb->data_, *wb->tree_,
                             options.pcube);
    if (!cube.ok()) return cube.status();
    wb->cube_ = std::make_unique<PCube>(std::move(*cube));
  }
  wb->SetUpCaches(options);
  PCUBE_RETURN_NOT_OK(wb->ColdStart());
  Wal::Options wal_options;
  if (!options.file_path.empty()) wal_options.path = options.file_path + ".wal";
  wal_options.truncate = true;
  wal_options.fault_plan = options.wal_fault_plan;
  auto wal = Wal::Open(wal_options);
  if (!wal.ok()) return wal.status();
  wb->wal_ = std::move(*wal);
  if (latency != nullptr) latency->set_read_latency_us(options.read_latency_us);
  if (wb->faults_ != nullptr) wb->faults_->set_armed(true);
  if (wb->wal_->faults() != nullptr) wb->wal_->faults()->set_armed(true);
  wb->StartMaintenance();
  return wb;
}

Workbench::~Workbench() {
  if (maintenance_.joinable()) {
    {
      MutexLock lock(&write_mu_);
      stop_maintenance_ = true;
    }
    pending_cv_.SignalAll();
    maintenance_.join();
  }
}

void Workbench::StartMaintenance() {
  {
    MutexLock lock(&write_mu_);
    staged_rows_ = data_.num_tuples();
    staged_deletes_ = tombstones_;
    applied_lsn_ = wal_->durable_lsn();
  }
  maintenance_ = std::thread([this] { MaintenanceLoop(); });
}

void Workbench::MaintenanceLoop() {
  MutexLock lock(&write_mu_);
  while (true) {
    pending_cv_.Wait(&write_mu_, [this]() REQUIRES(write_mu_) {
      return stop_maintenance_ || !pending_writes_.empty();
    });
    if (stop_maintenance_) return;

    // Only DURABLE batches may touch the structures (apply-before-fsync
    // would make a crash forget an already-visible write). The writer's own
    // group commit usually beats us here; when it has not, lead one.
    const uint64_t head_lsn = pending_writes_.front().lsn;
    if (wal_->durable_lsn() < head_lsn) {
      lock.Unlock();
      Status commit = wal_->WaitDurable(head_lsn);
      lock.Lock();
      if (stop_maintenance_) return;
      if (!commit.ok()) {
        // The log is poisoned (sticky commit failure): the head batch can
        // never become durable. Dispose of it so its waiters unblock with
        // the commit error instead of hanging.
        if (!pending_writes_.empty() &&
            pending_writes_.front().lsn == head_lsn) {
          pending_writes_.pop_front();
          apply_errors_[head_lsn] = commit;
          applied_lsn_ = std::max(applied_lsn_, head_lsn);
          applied_cv_.SignalAll();
        }
        continue;
      }
    }

    // Take a bounded slice of durable batches so the structure writer lock
    // below is held for a bounded stretch — readers run between slices.
    const uint64_t durable_upper = wal_->durable_lsn();
    std::vector<PendingWrite> slice;
    size_t slice_rows = 0;
    while (!pending_writes_.empty() &&
           pending_writes_.front().lsn <= durable_upper &&
           (slice.empty() || slice_rows < kMaintenanceSliceRows)) {
      slice_rows += pending_writes_.front().batch.num_rows();
      slice.push_back(std::move(pending_writes_.front()));
      pending_writes_.pop_front();
    }
    if (slice.empty()) continue;
    lock.Unlock();

    std::vector<std::pair<uint64_t, Status>> failures;
    {
      WriterLock structure_lock(&struct_mu_);
      WriteApplier applier(this);
      for (const PendingWrite& w : slice) {
        Status applied = applier.Apply(w.batch, /*replay=*/false);
        if (!applied.ok()) failures.emplace_back(w.lsn, applied);
      }
    }

    lock.Lock();
    for (auto& [lsn, st] : failures) apply_errors_[lsn] = std::move(st);
    applied_lsn_ = std::max(applied_lsn_, slice.back().lsn);
    applied_cv_.SignalAll();
  }
}

Result<WriteResult> Workbench::Apply(const WriteBatch& batch) {
  if (tree_ == nullptr) {
    return Status::NotSupported("instance was built without an R-tree");
  }
  PCUBE_RETURN_NOT_OK(ValidateWriteBatch(batch, data_.schema()));
  const auto start = std::chrono::steady_clock::now();

  WriteResult result;
  uint64_t lsn = 0;
  {
    // Staging order fixes everything downstream: LSN order == queue order
    // == tid assignment order, so replay and maintenance agree on which
    // rows a batch created.
    MutexLock lock(&write_mu_);
    // Deletes are validated here, against the staged cursors and before the
    // batch touches the WAL: a batch the log accepts can no longer fail a
    // logical check at apply time, so recovery never has to replay (or
    // refuse to open over) a batch this call already rejected. Inserts
    // staged ahead of this batch are deletable (tid_limit covers them, and
    // the maintenance thread applies strictly in LSN order), as are this
    // batch's own inserts (they land before its deletes).
    const uint64_t tid_limit = staged_rows_ + batch.inserts.size();
    std::unordered_set<TupleId> batch_deletes;
    for (TupleId tid : batch.deletes) {
      if (tid >= tid_limit) {
        return Status::InvalidArgument("delete of unknown tuple " +
                                       std::to_string(tid));
      }
      if (staged_deletes_.count(tid) > 0 || !batch_deletes.insert(tid).second) {
        return Status::NotFound("tuple " + std::to_string(tid) +
                                " is already deleted");
      }
    }
    auto payload = EncodeWalPayload(staged_rows_, batch);
    if (!payload.ok()) return payload.status();
    auto staged = wal_->Stage(*payload);
    if (!staged.ok()) return staged.status();
    lsn = *staged;
    result.first_tid = staged_rows_;
    staged_rows_ += batch.inserts.size();
    staged_deletes_.insert(batch.deletes.begin(), batch.deletes.end());
    pending_writes_.push_back(PendingWrite{lsn, batch});
    pending_cv_.Signal();
  }

  Status commit = wal_->WaitDurable(lsn, &result.group_size);
  result.durable = commit.ok() && wal_->durable();

  // kApplied waits for read-your-writes; a failed commit also waits so the
  // maintenance thread's disposal of the poisoned batch is consumed here
  // rather than leaking into apply_errors_.
  Status apply_status;
  if (!commit.ok() || batch.ack == WriteBatch::Ack::kApplied) {
    MutexLock lock(&write_mu_);
    applied_cv_.Wait(&write_mu_, [this, lsn]() REQUIRES(write_mu_) {
      return applied_lsn_ >= lsn;
    });
    auto it = apply_errors_.find(lsn);
    if (it != apply_errors_.end()) {
      apply_status = it->second;
      apply_errors_.erase(it);
    }
  }
  if (!commit.ok()) return commit;
  if (!apply_status.ok()) return apply_status;

  result.lsn = lsn;
  result.epoch = epoch_.global();
  result.commit_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  MetricsRegistry& registry = MetricsRegistry::Default();
  registry.GetCounter("pcube_write_batches_total")->Increment();
  registry.GetCounter("pcube_write_rows_total")->Increment(batch.num_rows());
  registry.GetHistogram("pcube_write_commit_seconds")
      ->Observe(result.commit_seconds);
  return result;
}

Status Workbench::DrainWrites() {
  const uint64_t target = wal_->next_lsn() - 1;
  MutexLock lock(&write_mu_);
  applied_cv_.Wait(&write_mu_, [this, target]() REQUIRES(write_mu_) {
    return applied_lsn_ >= target;
  });
  // Surface (and clear) failures no kDurable waiter was around to consume.
  Status first;
  auto it = apply_errors_.begin();
  while (it != apply_errors_.end() && it->first <= target) {
    if (first.ok()) first = it->second;
    it = apply_errors_.erase(it);
  }
  return first;
}

Status Workbench::RebuildCube() {
  if (cube_ == nullptr) {
    return Status::InvalidArgument("instance was built without a cube");
  }
  PCUBE_RETURN_NOT_OK(DrainWrites());
  WriterLock structure_lock(&struct_mu_);
  WriteApplier applier(this);
  return applier.RebuildCube();
}

Status Workbench::Save() {
  if (catalog_root_ == kInvalidPageId) {
    return Status::InvalidArgument(
        "Save() requires a file-backed workbench (options.file_path)");
  }
  if (table_ == nullptr) {
    return Status::InvalidArgument("Save() requires build_table");
  }
  // Every staged batch must be applied before the catalog snapshots the
  // structures, and nothing may mutate them while pages flush.
  PCUBE_RETURN_NOT_OK(DrainWrites());
  WriterLock structure_lock(&struct_mu_);
  CatalogData c;
  c.num_bool = data_.num_bool();
  c.num_pref = data_.num_pref();
  c.bool_cardinality = data_.schema().bool_cardinality;
  c.num_tuples = table_->num_tuples();
  c.table_pages = table_->page_ids();
  for (const BooleanIndex& index : indices_) {
    CatalogData::IndexInfo info;
    info.root = index.tree().root();
    info.num_entries = index.tree().num_entries();
    info.num_pages = index.tree().num_pages();
    info.next_seq = index.next_seq();
    c.indices.push_back(info);
  }
  c.rtree_root = tree_->root();
  c.rtree_height = tree_->height();
  c.rtree_fanout = tree_->fanout();
  c.rtree_entries = tree_->num_entries();
  c.rtree_pages = tree_->num_pages();
  if (cube_ != nullptr) {
    c.has_cube = true;
    const SignatureStore& store = cube_->store();
    c.sig_index_root = store.index().root();
    c.sig_index_entries = store.num_index_entries();
    c.sig_index_pages = store.index().num_pages();
    c.sig_dense = store.dense_cells();
    c.sig_num_partials = store.num_partials();
    c.sig_num_pages = store.num_pages();
    c.sig_append_page = store.append_page();
    c.sig_append_offset = store.append_offset();
    c.cube_cells = cube_->num_cells();
    c.cube_levels = cube_->levels();
  }
  c.dictionaries = dictionaries_;
  c.tombstones.assign(tombstones_.begin(), tombstones_.end());
  std::sort(c.tombstones.begin(), c.tombstones.end());
  PCUBE_RETURN_NOT_OK(SaveCatalog(pool_.get(), catalog_root_, c));
  PCUBE_RETURN_NOT_OK(pool_->FlushAll());
  if (checksums_ != nullptr) PCUBE_RETURN_NOT_OK(checksums_->SyncSidecar());
  // Durability order: page file on stable storage FIRST, then the WAL
  // checkpoint that declares its records folded in. A crash between the
  // two replays records whose effects are already present — the replay
  // cursor (base_rows) and replay-mode delete idempotence absorb that.
  PCUBE_RETURN_NOT_OK(pm_->Sync());
  return wal_->Checkpoint();
}

void Workbench::SetUpCaches(const WorkbenchOptions& options) {
  if (options.fragment_cache_mb > 0) {
    fragment_cache_ = std::make_unique<FragmentCache>(
        options.fragment_cache_mb << 20, &epoch_);
  }
  if (options.result_cache_mb > 0) {
    result_cache_ = std::make_unique<ResultCache>(
        options.result_cache_mb << 20, &epoch_, options.enable_containment);
  }
  if (cube_ != nullptr) cube_->AttachCaches(&epoch_, fragment_cache_.get());
  if (cube_ != nullptr && tree_ != nullptr) {
    shared_executor_ = std::make_unique<BatchExecutor>(
        tree_.get(), cube_.get(), /*pool=*/nullptr, /*query_log=*/nullptr,
        result_cache_.get(), &data_);
  }
}

Result<std::unique_ptr<Workbench>> Workbench::Open(
    const std::string& path, const WorkbenchOptions& options) {
  std::unique_ptr<Workbench> wb(new Workbench());
  auto fpm = FilePageManager::Open(path, /*truncate=*/false);
  if (!fpm.ok()) return fpm.status();
  wb->pm_ = std::move(*fpm);
  if (options.fault_plan.enabled()) {
    auto wrapped = std::make_unique<FaultInjectingPageManager>(
        std::move(wb->pm_), options.fault_plan);
    wb->faults_ = wrapped.get();
    wb->faults_->set_armed(false);  // armed below, after re-attaching
    wb->pm_ = std::move(wrapped);
  }
  if (options.verify_checksums) {
    auto wrapped = std::make_unique<ChecksumPageManager>(std::move(wb->pm_),
                                                         path + ".chk");
    wb->checksums_ = wrapped.get();
    wb->pm_ = std::move(wrapped);
  }
  LatencyPageManager* latency = nullptr;
  if (options.read_latency_us > 0) {
    // Wrap at zero latency so re-attaching and the table re-scan below stay
    // fast; enabled just before returning, like Build().
    auto wrapped = std::make_unique<LatencyPageManager>(std::move(wb->pm_));
    latency = wrapped.get();
    wb->pm_ = std::move(wrapped);
  }
  wb->pool_ = std::make_unique<BufferPool>(wb->pm_.get(), options.pool_pages,
                                           &wb->stats_, options.pool_stripes);
  wb->catalog_root_ = 0;
  auto catalog = LoadCatalog(wb->pool_.get(), wb->catalog_root_);
  if (!catalog.ok()) return catalog.status();
  const CatalogData& c = *catalog;

  wb->table_ = std::make_unique<TableStore>(TableStore::Attach(
      wb->pool_.get(), c.num_bool, c.num_pref, c.num_tuples, c.table_pages));
  for (size_t d = 0; d < c.indices.size(); ++d) {
    wb->indices_.push_back(BooleanIndex::Attach(
        wb->pool_.get(), static_cast<int>(d), c.indices[d].root,
        c.indices[d].num_entries, c.indices[d].num_pages,
        c.indices[d].next_seq));
  }
  RTreeOptions rtree_options;
  rtree_options.dims = c.num_pref;
  rtree_options.max_entries = c.rtree_fanout;
  wb->rtree_options_ = rtree_options;
  wb->tree_ = std::make_unique<RStarTree>(
      RStarTree::Attach(wb->pool_.get(), rtree_options, c.rtree_root,
                        c.rtree_height, c.rtree_entries, c.rtree_pages));
  if (c.has_cube) {
    auto store = std::make_unique<SignatureStore>(SignatureStore::Attach(
        wb->pool_.get(), c.sig_index_root, c.sig_index_entries,
        c.sig_index_pages, c.sig_dense, c.sig_num_partials, c.sig_num_pages,
        c.sig_append_page, c.sig_append_offset));
    wb->cube_ = std::make_unique<PCube>(
        PCube::Attach(std::move(store), c.rtree_fanout, c.cube_levels,
                      c.num_bool, c.cube_cells));
  }

  wb->dictionaries_ = c.dictionaries;
  wb->tombstones_.insert(c.tombstones.begin(), c.tombstones.end());

  // Rebuild the in-memory Dataset from the heap file.
  Schema schema;
  schema.num_bool = c.num_bool;
  schema.num_pref = c.num_pref;
  schema.bool_cardinality = c.bool_cardinality;
  wb->data_ = Dataset(schema, 0);
  Status scan = wb->table_->Scan([&](const TupleData& row) {
    wb->data_.Append(row.bools, row.prefs);
    return true;
  });
  if (!scan.ok()) return scan;

  // Crash recovery: replay acked-but-uncheckpointed batches from the WAL
  // before the first query can observe the structures. Each record carries
  // the row count it was staged against (base_rows), which doubles as the
  // replay cursor: records the last checkpoint already folded into the page
  // file sit BEHIND the heap's current count and are skipped; delete-only
  // records never advance the count and re-apply idempotently.
  Wal::Options wal_options;
  wal_options.path = path + ".wal";
  wal_options.truncate = false;
  wal_options.fault_plan = options.wal_fault_plan;
  auto wal = Wal::Open(wal_options);
  if (!wal.ok()) return wal.status();
  wb->wal_ = std::move(*wal);
  WriteApplier applier(wb.get());
  bool replay_applied = false;
  auto replayed = wb->wal_->Replay([&](const Wal::Record& record) -> Status {
    uint64_t base_rows = 0;
    WriteBatch batch;
    PCUBE_RETURN_NOT_OK(DecodeWalPayload(record.payload, &base_rows, &batch));
    if (base_rows > wb->data_.num_tuples()) {
      return Status::Corruption(
          "WAL record " + std::to_string(record.lsn) + ": row cursor " +
          std::to_string(base_rows) + " is ahead of the heap file (" +
          std::to_string(wb->data_.num_tuples()) + " rows)");
    }
    if (base_rows < wb->data_.num_tuples()) return Status::OK();
    PCUBE_RETURN_NOT_OK(ValidateWriteBatch(batch, wb->data_.schema()));
    replay_applied = true;
    return applier.Apply(batch, /*replay=*/true);
  });
  if (!replayed.ok()) return replayed.status();

  wb->SetUpCaches(options);
  PCUBE_RETURN_NOT_OK(wb->ColdStart());
  if (latency != nullptr) latency->set_read_latency_us(options.read_latency_us);
  if (wb->faults_ != nullptr) wb->faults_->set_armed(true);
  if (wb->wal_->faults() != nullptr) wb->wal_->faults()->set_armed(true);
  wb->StartMaintenance();
  if (replay_applied) {
    // Recovery ends with a checkpoint. The replayed batches mutated pages
    // in the buffer pool only; without folding them into the page file now,
    // a later eviction could write some of them back while the on-disk
    // catalog and checksum sidecar still describe the pre-crash state —
    // leaving a file that LOOKS corrupt to the next open even though no
    // data was lost. Checkpointing here makes recovery idempotent and the
    // file consistent before the first query runs.
    PCUBE_RETURN_NOT_OK(wb->Save());
  }
  return wb;
}

Status Workbench::ColdStart() {
  PCUBE_RETURN_NOT_OK(pool_->Clear());
  snapshot_ = stats_;
  return Status::OK();
}

Result<QueryResponse> Workbench::Run(const QueryRequest& request) {
  // Shared side of the structure lock: the maintenance thread mutates the
  // tree/cube/indices only under the exclusive side, so a query observes a
  // consistent structure snapshot for its whole execution.
  ReaderLock structure_lock(&struct_mu_);
  QueryPlanner planner(this);
  return planner.Run(request);
}

Result<QueryResponse> Workbench::RunShared(const QueryRequest& request) {
  if (shared_executor_ == nullptr) {
    return Status::NotSupported("instance was built without a cube");
  }
  ReaderLock structure_lock(&struct_mu_);
  BatchQueryResult result = shared_executor_->ExecuteOne(request);
  ReportQueryMetrics(request, result.response, result.status);
  if (!result.status.ok()) return result.status;
  return std::move(result.response);
}

Result<PlanEstimate> Workbench::Estimate(const PredicateSet& preds) {
  ReaderLock structure_lock(&struct_mu_);
  QueryPlanner planner(this);
  return planner.Estimate(preds);
}

std::string Workbench::DescribeShards() const {
  return "shard 0: " + std::to_string(data_.num_tuples()) +
         " tuples (single workbench)\n";
}

Result<SkylineOutput> Workbench::SignatureSkyline(const PredicateSet& preds,
                                                  std::vector<int> pref_dims) {
  PCUBE_CHECK(cube_ != nullptr);
  ReaderLock structure_lock(&struct_mu_);
  auto probe = cube_->MakeProbe(preds);
  if (!probe.ok()) return probe.status();
  SkylineQueryOptions options;
  options.pref_dims = std::move(pref_dims);
  SkylineEngine engine(tree_.get(), probe->get(), nullptr, options);
  return engine.Run();
}

Result<TopKOutput> Workbench::SignatureTopK(const PredicateSet& preds,
                                            const RankingFunction& f,
                                            size_t k) {
  PCUBE_CHECK(cube_ != nullptr);
  ReaderLock structure_lock(&struct_mu_);
  auto probe = cube_->MakeProbe(preds);
  if (!probe.ok()) return probe.status();
  TopKEngine engine(tree_.get(), probe->get(), nullptr, &f, k);
  return engine.Run();
}

BatchOutput Workbench::RunBatch(const std::vector<BatchQuery>& queries,
                                size_t num_workers, QueryLog* query_log) {
  PCUBE_CHECK(cube_ != nullptr);
  ReaderLock structure_lock(&struct_mu_);
  ThreadPool pool(num_workers);
  BatchExecutor executor(tree_.get(), cube_.get(), &pool, query_log,
                         result_cache_.get(), &data_);
  return executor.Execute(queries);
}

Result<Workbench::IntegrityReport> Workbench::VerifyIntegrity() {
  // The walk checks structural invariants (entry counts, key order), so
  // half-applied batches would read as damage: drain first, then freeze.
  PCUBE_RETURN_NOT_OK(DrainWrites());
  WriterLock structure_lock(&struct_mu_);
  IntegrityReport report;

  // 1. Page sweep: every allocated page must read back — through the
  // checksum layer when enabled, so bit rot surfaces as Corruption here.
  const uint64_t num_pages = pm_->NumPages();
  for (PageId pid = 0; pid < num_pages; ++pid) {
    auto handle = pool_->Get(pid, IoCategory::kHeapFile);
    ++report.pages_checked;
    if (!handle.ok()) {
      report.errors.emplace_back(pid, handle.status().ToString());
    }
  }

  // 2. Boolean indices: a full range scan must succeed, visit keys in
  // ascending order and agree with the recorded entry count.
  for (const BooleanIndex& index : indices_) {
    uint64_t seen = 0;
    uint64_t prev_key = 0;
    bool ordered = true;
    Status scan = index.tree().RangeScan(
        0, ~uint64_t{0}, [&](uint64_t key, uint64_t) {
          if (seen > 0 && key <= prev_key) ordered = false;
          prev_key = key;
          ++seen;
          return true;
        });
    std::string label = "bool index " + std::to_string(index.dim());
    if (!scan.ok()) {
      report.errors.emplace_back(kInvalidPageId,
                                 label + ": " + scan.ToString());
      continue;
    }
    if (!ordered) {
      report.errors.emplace_back(kInvalidPageId,
                                 label + ": keys out of order");
    }
    if (seen != index.tree().num_entries()) {
      report.errors.emplace_back(
          kInvalidPageId, label + ": scanned " + std::to_string(seen) +
                              " entries, recorded " +
                              std::to_string(index.tree().num_entries()));
    }
  }

  // 3. R-tree structural invariants.
  if (tree_ != nullptr) {
    std::vector<std::string> problems;
    Status walk = tree_->CheckStructure(&problems);
    if (!walk.ok()) {
      report.errors.emplace_back(kInvalidPageId, walk.ToString());
    }
    for (std::string& p : problems) {
      report.errors.emplace_back(kInvalidPageId, std::move(p));
    }
  }

  // 4. Signature store: every stored cell's signature must reassemble.
  if (cube_ != nullptr) {
    const SignatureStore& store = cube_->store();
    for (const auto& [cell, dense] : store.dense_cells()) {
      auto sig = store.LoadFull(cell, cube_->fanout(), cube_->levels());
      if (!sig.ok()) {
        report.errors.emplace_back(
            kInvalidPageId, "signature cell " + std::to_string(dense) + ": " +
                                sig.status().ToString());
      }
    }
  }

  PCUBE_RETURN_NOT_OK(ColdStart());
  return report;
}

void Workbench::ExportMetrics(MetricsRegistry* registry) const {
  ReaderLock structure_lock(&struct_mu_);
  pool_->ExportTo(registry, "pcube_bufferpool");
  registry->GetGauge("pcube_pages_total")
      ->Set(static_cast<double>(pm_->NumPages()));
  if (table_ != nullptr) {
    registry->GetGauge("pcube_table_pages")
        ->Set(static_cast<double>(table_->num_pages()));
  }
  if (tree_ != nullptr) {
    registry->GetGauge("pcube_rtree_pages")
        ->Set(static_cast<double>(tree_->num_pages()));
  }
  if (cube_ != nullptr) {
    registry->GetGauge("pcube_cube_pages")
        ->Set(static_cast<double>(cube_->MaterializedPages()));
    registry->GetGauge("pcube_cube_cells")
        ->Set(static_cast<double>(cube_->num_cells()));
  }
  registry->GetGauge("pcube_io_reads_total")
      ->Set(static_cast<double>(stats_.TotalReads()));
  registry->GetGauge("pcube_io_writes_total")
      ->Set(static_cast<double>(stats_.TotalWrites()));
  registry->GetGauge("pcube_tombstones")
      ->Set(static_cast<double>(tombstones_.size()));
  if (wal_ != nullptr) {
    registry->GetGauge("pcube_wal_durable_lsn")
        ->Set(static_cast<double>(wal_->durable_lsn()));
    registry->GetGauge("pcube_wal_syncs")
        ->Set(static_cast<double>(wal_->sync_count()));
  }

  // Cache occupancy plus per-level hit rates. The caches report their
  // event counters into the process-wide default registry; the rates here
  // are derived from those so one scrape shows both.
  MetricsRegistry& events = MetricsRegistry::Default();
  if (result_cache_ != nullptr) {
    registry->GetGauge("pcube_result_cache_bytes")
        ->Set(static_cast<double>(result_cache_->bytes()));
    registry->GetGauge("pcube_result_cache_entries")
        ->Set(static_cast<double>(result_cache_->entries()));
    double hits =
        events.GetCounter("pcube_result_cache_hits_total")->Value() +
        events.GetCounter("pcube_result_cache_containment_total")->Value();
    double lookups =
        hits + events.GetCounter("pcube_result_cache_misses_total")->Value();
    registry->GetGauge("pcube_result_cache_hit_rate")
        ->Set(lookups > 0 ? hits / lookups : 0.0);
  }
  if (fragment_cache_ != nullptr) {
    registry->GetGauge("pcube_fragment_cache_bytes")
        ->Set(static_cast<double>(fragment_cache_->bytes()));
    registry->GetGauge("pcube_fragment_cache_entries")
        ->Set(static_cast<double>(fragment_cache_->entries()));
    double hits = events.GetCounter("pcube_fragment_cache_hits_total")->Value();
    double lookups =
        hits + events.GetCounter("pcube_fragment_cache_misses_total")->Value() +
        events.GetCounter("pcube_fragment_cache_stale_total")->Value();
    registry->GetGauge("pcube_fragment_cache_hit_rate")
        ->Set(lookups > 0 ? hits / lookups : 0.0);
  }
}

}  // namespace pcube
