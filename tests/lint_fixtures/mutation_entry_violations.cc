// Positive fixtures for pcube-mutation-entry: every direct call to a raw
// structure mutator outside the sanctioned entry points must be reported
// exactly once, on the marked line.
#include "lint_fixture_support.h"

namespace pcube {

Status UpdateStructuresDirectly(RStarTree& tree, TableStore* table,
                                PCube* cube, const Dataset& data) {
  PathChangeSet changes;
  Status s = tree.Insert(1.0f, 7, &changes);  // expect-lint: pcube-mutation-entry
  if (!s.ok()) return s;
  s = tree.Delete(1.0f, 7, &changes);  // expect-lint: pcube-mutation-entry
  if (!s.ok()) return s;
  s = table->Append(3, 4);  // expect-lint: pcube-mutation-entry
  if (!s.ok()) return s;
  s = cube->ApplyChanges(data, changes);  // expect-lint: pcube-mutation-entry
  if (!s.ok()) return s;
  return cube->Rebuild(data, tree);  // expect-lint: pcube-mutation-entry
}

}  // namespace pcube
