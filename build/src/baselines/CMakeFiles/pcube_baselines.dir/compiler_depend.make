# Empty compiler generated dependencies file for pcube_baselines.
# This may be replaced when dependencies are built.
