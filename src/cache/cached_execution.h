// Containment execution: turning a cached ancestor answer into the current
// query's answer. Top-k containment is a pure filter (done inside
// ResultCache::Find); skyline containment must re-run Algorithm 1, but
// seeded by the ancestor's engine output via Lemma 2 (incremental.h)
// instead of restarting from the R-tree root — this is the paper's
// drill-down made automatic: the cache recognises that P' extends P and
// reuses P's result ∪ d_list as the candidate heap.
#pragma once

#include <chrono>
#include <optional>

#include "cache/result_cache.h"
#include "common/trace.h"
#include "core/pcube.h"
#include "query/skyline_engine.h"
#include "rtree/rstar_tree.h"

namespace pcube {

/// Runs the skyline for `request` (whose predicates must be a superset of
/// the ones `prev` was computed with) as a drill-down seeded from `prev`.
/// Returns the merged output (MergeAfterDrillDown), which is itself valid
/// to re-cache for `request`. On failure the caller should fall back to a
/// fresh execution and record a miss.
Result<SkylineOutput> RunSkylineDrillDown(
    const RStarTree* tree, const PCube* cube, const QueryRequest& request,
    const SkylineOutput& prev, Trace* trace,
    const std::optional<std::chrono::steady_clock::time_point>& deadline);

}  // namespace pcube
