file(REMOVE_RECURSE
  "CMakeFiles/pcube_data.dir/covertype.cc.o"
  "CMakeFiles/pcube_data.dir/covertype.cc.o.d"
  "CMakeFiles/pcube_data.dir/csv.cc.o"
  "CMakeFiles/pcube_data.dir/csv.cc.o.d"
  "CMakeFiles/pcube_data.dir/generators.cc.o"
  "CMakeFiles/pcube_data.dir/generators.cc.o.d"
  "CMakeFiles/pcube_data.dir/table1.cc.o"
  "CMakeFiles/pcube_data.dir/table1.cc.o.d"
  "libpcube_data.a"
  "libpcube_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcube_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
