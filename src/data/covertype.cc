#include "data/covertype.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace pcube {

const std::vector<uint32_t>& CoverTypeBoolCardinalities() {
  static const std::vector<uint32_t> cards = {255, 207, 185, 67, 7, 2,
                                              2,   2,   2,   2,  2, 2};
  return cards;
}

const std::vector<uint32_t>& CoverTypePrefCardinalities() {
  static const std::vector<uint32_t> cards = {1989, 5787, 5827};
  return cards;
}

Dataset GenerateCoverTypeSurrogate(const CoverTypeConfig& config) {
  const auto& bool_cards = CoverTypeBoolCardinalities();
  const auto& pref_cards = CoverTypePrefCardinalities();
  Schema schema;
  schema.num_bool = static_cast<int>(bool_cards.size());
  schema.num_pref = static_cast<int>(pref_cards.size());
  schema.bool_cardinality = bool_cards;
  Dataset data(schema, config.num_tuples);

  Random rng(config.seed);
  for (TupleId t = 0; t < config.num_tuples; ++t) {
    for (int d = 0; d < schema.num_bool; ++d) {
      // Zipf-like skew: squaring a uniform concentrates mass on low codes,
      // mimicking the frequency skew of real categorical attributes.
      double u = rng.NextDouble();
      uint32_t v = static_cast<uint32_t>(u * u * bool_cards[d]);
      data.SetBoolValue(t, d, std::min(v, bool_cards[d] - 1));
    }
    // Mildly correlated quantitative attributes (terrain measurements
    // co-vary weakly), quantised to the original cardinalities. The shared
    // component is kept small so skylines stay non-trivial, matching the
    // behaviour of the real attributes.
    double base = 0.15 * rng.NextGaussian();
    for (int d = 0; d < schema.num_pref; ++d) {
      double v = std::clamp(0.5 + base + 0.45 * rng.NextGaussian(), 0.0, 1.0);
      uint32_t grid = pref_cards[d];
      uint32_t q = std::min(static_cast<uint32_t>(v * grid), grid - 1);
      data.SetPrefValue(t, d, static_cast<float>(q) / grid);
    }
  }
  return data;
}

}  // namespace pcube
