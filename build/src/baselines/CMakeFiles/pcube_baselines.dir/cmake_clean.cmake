file(REMOVE_RECURSE
  "CMakeFiles/pcube_baselines.dir/boolean_first.cc.o"
  "CMakeFiles/pcube_baselines.dir/boolean_first.cc.o.d"
  "CMakeFiles/pcube_baselines.dir/domination_first.cc.o"
  "CMakeFiles/pcube_baselines.dir/domination_first.cc.o.d"
  "CMakeFiles/pcube_baselines.dir/index_merge.cc.o"
  "CMakeFiles/pcube_baselines.dir/index_merge.cc.o.d"
  "libpcube_baselines.a"
  "libpcube_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcube_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
