#include "core/signature_cursor.h"

namespace pcube {

Status SignatureCursor::LoadPartialAt(const Path& root_path) {
  uint64_t sid = PathToSid(root_path, fragment_.fanout());
  if (attempted_.count(sid) > 0) return Status::OK();
  attempted_.insert(sid);
  if (cache_ != nullptr) {
    if (auto hit = cache_->Lookup(cell_, sid)) {
      // Replay the cached decode. The contributed node set is a pure
      // function of (cell, sid) because every cursor loads partials along
      // root-to-leaf prefixes in the same order, so insertion is exact.
      for (size_t i = 0; i < hit->num_nodes(); ++i) {
        // no-op if an ancestor partial already supplied the node
        fragment_.AddNode(hit->path(i), hit->NodeBits(i));
      }
      return Status::OK();
    }
  }
  // Read the epoch stamp BEFORE the store access: a concurrent update can
  // then only make the entry look stale at lookup, never wrongly fresh.
  uint64_t stamp =
      cache_ != nullptr ? cache_->epoch()->OfCell(cell_) : 0;
  auto bytes = store_->LoadPartial(cell_, sid);
  if (!bytes.ok()) {
    if (bytes.status().IsNotFound()) {
      // Negative entry: the probing rule touches many absent SIDs.
      if (cache_ != nullptr) cache_->Insert(cell_, sid, false, {}, stamp);
      return Status::OK();
    }
    return bytes.status();
  }
  ++partials_loaded_;
  std::vector<std::pair<Path, BitVector>> added;
  PCUBE_RETURN_NOT_OK(DecodePartialSignature(
      root_path, *bytes, &fragment_, cache_ != nullptr ? &added : nullptr));
  if (cache_ != nullptr) {
    cache_->Insert(cell_, sid, true, std::move(added), stamp);
  }
  return Status::OK();
}

Result<bool> SignatureCursor::EnsureNode(const Path& node_path) {
  if (!root_loaded_) {
    root_loaded_ = true;
    PCUBE_RETURN_NOT_OK(LoadPartialAt({}));
  }
  if (fragment_.HasNode(node_path)) return true;
  // Probe partials rooted at successively deeper prefixes of the path.
  Path prefix;
  for (uint16_t slot : node_path) {
    prefix.push_back(slot);
    PCUBE_RETURN_NOT_OK(LoadPartialAt(prefix));
    if (fragment_.HasNode(node_path)) return true;
  }
  return false;
}

Result<bool> SignatureCursor::Test(const Path& path) {
  PCUBE_DCHECK_GE(path.size(), size_t{1});
  PCUBE_DCHECK_LE(path.size(), static_cast<size_t>(levels_));
  Path prefix;  // node whose array we are inspecting
  for (size_t i = 0; i < path.size(); ++i) {
    auto present = EnsureNode(prefix);
    if (!present.ok()) return present.status();
    if (!*present) return false;
    const BitVector* bits = fragment_.Node(prefix);
    uint16_t slot = path[i];
    if (slot < 1 || slot > fragment_.fanout() || !bits->Get(slot - 1)) {
      return false;
    }
    prefix.push_back(slot);
  }
  return true;
}

}  // namespace pcube
