// Cost-based method selection. Fig. 11 of the paper shows a crossover: for
// highly selective predicates (large C) the Boolean-first plan approaches —
// and can beat — the signature plan, because fetching a handful of matching
// tuples is cheaper than any space traversal. A production system should
// therefore pick the method per query. This planner estimates page costs
// from the boolean indices' exact match counts and a simple R-tree traversal
// model, runs the cheaper plan, and reports both the estimates and what was
// executed.
#pragma once

#include "workbench/workbench.h"

namespace pcube {

/// Which physical plan the planner chose.
enum class PlanChoice { kSignature, kBooleanFirst };

/// Cost estimates (in 4 KB page reads) and the decision.
struct PlanEstimate {
  uint64_t matching_tuples = 0;
  uint64_t boolean_pages = 0;    ///< selection fetches or table scan
  uint64_t signature_pages = 0;  ///< modelled R-tree blocks + signatures
  PlanChoice choice = PlanChoice::kSignature;
};

/// Result of a planned skyline query.
struct PlannedSkyline {
  std::vector<TupleId> tids;  ///< ascending
  PlanEstimate estimate;
  IoStats executed_io;
};

/// Result of a planned top-k query.
struct PlannedTopK {
  std::vector<std::pair<TupleId, double>> results;  ///< ascending score
  PlanEstimate estimate;
  IoStats executed_io;
};

/// Chooses and executes plans against one workbench.
class QueryPlanner {
 public:
  /// `wb` must outlive the planner and have indices + cube built.
  explicit QueryPlanner(Workbench* wb) : wb_(wb) {}

  /// Estimates both plans for `preds` without executing anything
  /// (index-only match counting).
  Result<PlanEstimate> Estimate(const PredicateSet& preds) const;

  /// Runs the cheaper skyline plan (cold cache).
  Result<PlannedSkyline> Skyline(const PredicateSet& preds);

  /// Runs the cheaper top-k plan (cold cache).
  Result<PlannedTopK> TopK(const PredicateSet& preds, const RankingFunction& f,
                           size_t k);

 private:
  Workbench* wb_;
};

}  // namespace pcube
