#include "baselines/index_merge.h"

#include <algorithm>

namespace pcube {

Result<TopKOutput> IndexMergeTopK(const RStarTree& tree,
                                  const std::vector<BooleanIndex>& indices,
                                  const PredicateSet& preds,
                                  const RankingFunction& f, size_t k) {
  if (preds.empty()) {
    TrueProbe probe;
    TopKEngine engine(&tree, &probe, nullptr, &f, k);
    return engine.Run();
  }
  // Merge step: scan each predicate's postings (selective merge starts from
  // the shortest list) and intersect.
  std::vector<std::vector<TupleId>> postings;
  for (const Predicate& p : preds.predicates()) {
    auto tids = indices[p.dim].Lookup(p.value);
    if (!tids.ok()) return tids.status();
    postings.push_back(std::move(*tids));
  }
  std::sort(postings.begin(), postings.end(),
            [](const auto& a, const auto& b) { return a.size() < b.size(); });
  std::unordered_set<TupleId> rids(postings[0].begin(), postings[0].end());
  for (size_t i = 1; i < postings.size() && !rids.empty(); ++i) {
    std::unordered_set<TupleId> next;
    for (TupleId t : postings[i]) {
      if (rids.count(t) > 0) next.insert(t);
    }
    rids = std::move(next);
  }

  RidSetProbe probe(std::move(rids));
  TopKEngine engine(&tree, &probe, nullptr, &f, k);
  return engine.Run();
}

}  // namespace pcube
