# Empty dependencies file for pcube_cube.
# This may be replaced when dependencies are built.
