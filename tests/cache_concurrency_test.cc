// Concurrency tests for the query cache, written for TSan (scripts/ci.sh
// runs them under -fsanitize=thread): batch workers race each other on the
// shared two-level cache while an updater thread applies Fig. 7 incremental
// maintenance between batches, and every answer is checked against the
// naive uncached reference over the data as it was when the query ran.
//
// Locking contract: the Workbench documents that the instance must not be
// mutated while a batch runs, so readers hold a shared lock for the
// duration of a batch (plus its verification — the data must not move
// under the reference computation) and the updater takes the lock
// exclusively per maintenance step. Everything else — cache fills, epoch
// bumps vs. lookups, SLRU promotion, buffer-pool traffic — races freely.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "cache/epoch.h"
#include "cache/fragment_cache.h"
#include "cache/result_cache.h"
#include "common/metrics.h"
#include "data/generators.h"
#include "query/reference.h"
#include "workbench/workbench.h"

namespace pcube {
namespace {

uint64_t CounterValue(const char* name) {
  return MetricsRegistry::Default().GetCounter(name)->Value();
}

TEST(CacheConcurrencyTest, BatchWorkersRaceIncrementalUpdates) {
  SyntheticConfig config;
  config.num_tuples = 1500;
  config.num_bool = 3;
  config.num_pref = 2;
  config.bool_cardinality = 6;
  config.seed = 31;
  auto built = Workbench::Build(GenerateSynthetic(config), {});
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  Workbench* wb = built->get();

  // Tuples the updater inserts, pre-generated with the same schema.
  SyntheticConfig extra_config = config;
  extra_config.num_tuples = 32;
  extra_config.seed = 77;
  Dataset extra = GenerateSynthetic(extra_config);

  auto f = std::make_shared<LinearRanking>(std::vector<double>{0.6, 0.4});
  std::vector<BatchQuery> pool;
  for (uint32_t v = 0; v < 6; ++v) {
    pool.push_back(BatchQuery::Skyline({{0, v}}));
    pool.push_back(BatchQuery::TopK({{1, v}}, f, 8));
  }

  std::shared_mutex mu;
  std::atomic<uint64_t> mismatches{0};
  std::mutex first_mu;
  std::string first_error;
  auto report = [&](const std::string& msg) {
    mismatches.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(first_mu);
    if (first_error.empty()) first_error = msg;
  };

  uint64_t hits_before = CounterValue("pcube_result_cache_hits_total") +
                         CounterValue("pcube_result_cache_containment_total");

  auto reader = [&] {
    for (int iter = 0; iter < 10; ++iter) {
      std::shared_lock<std::shared_mutex> lock(mu);
      BatchOutput out = wb->RunBatch(pool, 2);
      // Verify under the same lock: the reference must see the same data
      // snapshot the batch answered against.
      for (size_t i = 0; i < pool.size(); ++i) {
        const BatchQueryResult& r = out.results[i];
        if (!r.status.ok()) {
          report("query failed: " + r.status.ToString());
          continue;
        }
        if (pool[i].kind == BatchQuery::Kind::kSkyline) {
          if (r.response.tids != NaiveSkyline(wb->data(), pool[i].preds)) {
            report("skyline mismatch vs naive reference");
          }
          if (!r.skyline.has_value()) report("skyline output missing");
        } else {
          auto naive = NaiveTopK(wb->data(), pool[i].preds, *f, pool[i].k);
          bool ok = r.response.tids.size() == naive.size();
          for (size_t j = 0; ok && j < naive.size(); ++j) {
            ok = r.response.tids[j] == naive[j].first &&
                 r.response.scores[j] == naive[j].second;
          }
          if (!ok) report("top-k mismatch vs naive reference");
          if (!r.topk.has_value()) report("top-k output missing");
        }
      }
    }
  };

  auto updater = [&] {
    for (uint64_t t = 0; t < extra.num_tuples(); ++t) {
      // The exclusive lock keeps the REFERENCE computation stable (readers
      // verify under the shared side); Apply itself needs no external
      // synchronization.
      std::unique_lock<std::shared_mutex> lock(mu);
      WriteBatch batch;
      auto bools = extra.BoolRow(t);
      auto prefs = extra.PrefPoint(t);
      batch.inserts.push_back({{bools.begin(), bools.end()},
                               {prefs.begin(), prefs.end()}});
      auto applied = wb->Apply(batch);
      if (!applied.ok()) {
        report("Apply failed: " + applied.status().ToString());
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) threads.emplace_back(reader);
  threads.emplace_back(updater);
  for (auto& t : threads) t.join();

  EXPECT_EQ(mismatches.load(), 0u) << first_error;
  // Repeated identical batches must actually have exercised the cache.
  EXPECT_GT(CounterValue("pcube_result_cache_hits_total") +
                CounterValue("pcube_result_cache_containment_total"),
            hits_before);
}

TEST(CacheConcurrencyTest, AckedWriteNeverServedStaleCachedAnswer) {
  // Differential test for the write-path epoch handshake (DESIGN.md §15):
  // once Apply(Ack::kApplied) has returned, NO subsequent query — cached or
  // not — may answer from a pre-write snapshot. The writer inserts a chain
  // of tuples each strictly dominating everything before it (so the skyline
  // for the probed predicate is exactly the newest applied insert), and the
  // readers hammer the SAME request so the L1 result cache serves it
  // whenever its stamps are current; a stale cached hit would return a tid
  // OLDER than the last acknowledged insert. Runs under TSan via ci.sh.
  SyntheticConfig config;
  config.num_tuples = 400;
  config.num_bool = 1;
  config.num_pref = 2;
  config.bool_cardinality = 4;
  config.seed = 93;
  auto built = Workbench::Build(GenerateSynthetic(config), {});
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  Workbench* wb = built->get();

  constexpr uint32_t kTargetValue = 2;
  constexpr TupleId kNone = static_cast<TupleId>(-1);
  std::atomic<TupleId> last_acked{kNone};
  std::atomic<bool> done{false};
  std::atomic<uint64_t> stale{0};
  std::mutex first_mu;
  std::string first_error;
  auto report = [&](const std::string& msg) {
    stale.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(first_mu);
    if (first_error.empty()) first_error = msg;
  };

  auto writer = [&] {
    for (int i = 0; i < 40; ++i) {
      WriteBatch batch;  // Ack::kApplied: read-your-writes on return
      batch.inserts.push_back(
          {{kTargetValue},
           {-1.0f - static_cast<float>(i), -1.0f - static_cast<float>(i)}});
      auto applied = wb->Apply(batch);
      if (!applied.ok()) {
        report("Apply failed: " + applied.status().ToString());
        break;
      }
      last_acked.store(applied->first_tid, std::memory_order_release);
    }
    done.store(true, std::memory_order_release);
  };

  auto reader = [&] {
    QueryRequest request = QueryRequest::Skyline({{0, kTargetValue}});
    while (!done.load(std::memory_order_acquire)) {
      const TupleId expect = last_acked.load(std::memory_order_acquire);
      auto resp = wb->RunShared(request);
      if (!resp.ok()) {
        report("query failed: " + resp.status().ToString());
        return;
      }
      if (expect == kNone) continue;  // nothing acknowledged yet
      // Each insert dominates every earlier tuple, so the skyline is the
      // single newest APPLIED insert; anything older than the last insert
      // acknowledged before the query began is a stale answer.
      if (resp->tids.size() != 1) {
        report("skyline size " + std::to_string(resp->tids.size()) +
               " after dominating insert");
      } else if (resp->tids[0] < expect) {
        report("stale answer: tid " + std::to_string(resp->tids[0]) +
               " but insert " + std::to_string(expect) +
               " was already acknowledged");
      }
    }
  };

  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) threads.emplace_back(reader);
  threads.emplace_back(writer);
  for (auto& t : threads) t.join();

  EXPECT_EQ(stale.load(), 0u) << first_error;
}

TEST(CacheConcurrencyTest, ResultCacheProtocolUnderRacingBumps) {
  // Pure cache/epoch unit race: inserts, lookups and epoch bumps with no
  // external synchronization at all. Correctness here is "TSan-clean and
  // the accounting converges"; answer-level correctness is covered above
  // and in cache_test.cc.
  SyntheticConfig config;
  config.num_tuples = 64;
  config.num_bool = 2;
  config.num_pref = 2;
  config.bool_cardinality = 8;
  config.seed = 7;
  Dataset data = GenerateSynthetic(config);

  DataEpoch epoch;
  const size_t budget = 256 * 1024;
  ResultCache cache(budget, &epoch, /*enable_containment=*/true);

  auto worker = [&](int id) {
    for (int i = 0; i < 2000; ++i) {
      uint32_t v = static_cast<uint32_t>((i + id) % 8);
      uint32_t w = static_cast<uint32_t>((i / 8) % 8);
      QueryRequest request = QueryRequest::Skyline({{0, v}, {1, w}});
      if (i % 3 == 0) {
        QueryResponse resp;
        resp.tids = {static_cast<TupleId>(i), static_cast<TupleId>(i + 1)};
        cache.Insert(request, resp, nullptr, nullptr,
                     cache.SnapshotStamps(request.preds));
      } else {
        (void)cache.Find(request, data);
      }
      if (i % 64 == 0) epoch.BumpCells({AtomicCellId(0, v)});
    }
  };
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) threads.emplace_back(worker, i);
  for (auto& t : threads) t.join();

  EXPECT_LE(cache.bytes(), budget);
}

TEST(CacheConcurrencyTest, FragmentCacheUnderRacingBumps) {
  DataEpoch epoch;
  const size_t budget = 64 * 1024;
  FragmentCache cache(budget, &epoch);

  auto worker = [&](int id) {
    for (int i = 0; i < 4000; ++i) {
      CellId cell = AtomicCellId(id % 2, static_cast<uint32_t>(i % 16));
      uint64_t sid = static_cast<uint64_t>(i % 32);
      if (i % 3 == 0) {
        cache.Insert(cell, sid, i % 2 == 0, {}, epoch.OfCell(cell));
      } else {
        (void)cache.Lookup(cell, sid);
      }
      if (i % 128 == 0) epoch.BumpCells({cell});
    }
  };
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) threads.emplace_back(worker, i);
  for (auto& t : threads) t.join();

  EXPECT_LE(cache.bytes(), budget);
}

}  // namespace
}  // namespace pcube
