
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/convex_hull.cc" "src/query/CMakeFiles/pcube_query.dir/convex_hull.cc.o" "gcc" "src/query/CMakeFiles/pcube_query.dir/convex_hull.cc.o.d"
  "/root/repo/src/query/reference.cc" "src/query/CMakeFiles/pcube_query.dir/reference.cc.o" "gcc" "src/query/CMakeFiles/pcube_query.dir/reference.cc.o.d"
  "/root/repo/src/query/skyline_engine.cc" "src/query/CMakeFiles/pcube_query.dir/skyline_engine.cc.o" "gcc" "src/query/CMakeFiles/pcube_query.dir/skyline_engine.cc.o.d"
  "/root/repo/src/query/topk_engine.cc" "src/query/CMakeFiles/pcube_query.dir/topk_engine.cc.o" "gcc" "src/query/CMakeFiles/pcube_query.dir/topk_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pcube_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bitmap/CMakeFiles/pcube_bitmap.dir/DependInfo.cmake"
  "/root/repo/build/src/rtree/CMakeFiles/pcube_rtree.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/pcube_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/cube/CMakeFiles/pcube_cube.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pcube_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
