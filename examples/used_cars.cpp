// Example 1 of the paper: multi-dimensional top-k query on a used-car
// database with schema (type, maker, color, price, mileage).
//
//   SELECT TOP 10 used cars FROM R
//   WHERE type = 'sedan' AND color = 'red'
//   ORDER BY (price - 15k)^2 + alpha * (mileage - 30k)^2
//
// The example synthesises a 200k-row inventory, builds the full stack
// (heap file, boolean B+-trees, R*-tree, P-Cube), answers the query with
// all four methods of §VI, and prints their disk-access and timing profile.
//
//   ./used_cars [num_cars]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/random.h"
#include "common/timer.h"
#include "workbench/workbench.h"

using namespace pcube;

namespace {

constexpr int kType = 0;   // sedan, suv, truck, coupe, van
constexpr int kMaker = 1;  // 20 makers
constexpr int kColor = 2;  // 8 colors
const char* kTypeNames[] = {"sedan", "suv", "truck", "coupe", "van"};
const char* kColorNames[] = {"red",    "black", "white", "blue",
                             "silver", "green", "grey",  "yellow"};

Dataset MakeInventory(uint64_t n) {
  Schema schema;
  schema.num_bool = 3;
  schema.num_pref = 2;  // price (k$), mileage (k miles), normalised to [0,1]
  schema.bool_cardinality = {5, 20, 8};
  Dataset data(schema, n);
  Random rng(2008);
  for (TupleId t = 0; t < n; ++t) {
    data.SetBoolValue(t, kType, static_cast<uint32_t>(rng.Uniform(5)));
    data.SetBoolValue(t, kMaker, static_cast<uint32_t>(rng.Uniform(20)));
    data.SetBoolValue(t, kColor, static_cast<uint32_t>(rng.Uniform(8)));
    // Price in [0, 60k] and mileage in [0, 200k miles], correlated:
    // higher mileage -> lower price.
    double mileage = rng.NextDouble();
    double price =
        std::min(1.0, std::max(0.0, 0.8 - 0.5 * mileage +
                                        0.15 * rng.NextGaussian()));
    data.SetPrefValue(t, 0, static_cast<float>(price));
    data.SetPrefValue(t, 1, static_cast<float>(mileage));
  }
  return data;
}

double PriceK(float v) { return v * 60.0; }
double MileageK(float v) { return v * 200.0; }

}  // namespace

int main(int argc, char** argv) {
  uint64_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200000;
  std::printf("used-car inventory: %llu cars (type, maker, color | price, "
              "mileage)\n",
              static_cast<unsigned long long>(n));

  auto wb = Workbench::Build(MakeInventory(n), WorkbenchOptions{});
  PCUBE_CHECK(wb.ok());
  Workbench& w = **wb;

  // The user's query: red sedans, expected price 15k, expected mileage 30k,
  // alpha balances the two criteria.
  PredicateSet preds{{kType, 0}, {kColor, 0}};
  const double alpha = 0.7;
  WeightedL2Ranking f({15.0 / 60.0, 30.0 / 200.0}, {1.0, alpha});
  const size_t k = 10;

  std::printf("query: top %zu %s %s cars, expected price $15k / 30k miles "
              "(alpha=%.1f)\n\n",
              k, kColorNames[0], kTypeNames[0], alpha);

  // --- Signature (P-Cube) -------------------------------------------------
  PCUBE_CHECK_OK(w.ColdStart());
  Timer t;
  auto sig = w.SignatureTopK(preds, f, k);
  PCUBE_CHECK(sig.ok());
  double sig_ms = t.ElapsedMillis();
  IoStats sig_io = w.IoSince();

  std::printf("top-%zu results (P-Cube signature search):\n", k);
  for (size_t i = 0; i < sig->results.size(); ++i) {
    const SearchEntry& e = sig->results[i];
    std::printf("  %2zu. car #%-8llu $%5.1fk  %6.1fk miles  (score %.5f)\n",
                i + 1, static_cast<unsigned long long>(e.id),
                PriceK(e.rect.min[0]), MileageK(e.rect.min[1]), e.key);
  }

  // --- baselines ----------------------------------------------------------
  PCUBE_CHECK_OK(w.ColdStart());
  t.Reset();
  BooleanFirstExecutor boolean(&w.indices(), w.table());
  auto bool_out = boolean.TopK(preds, f, k);
  PCUBE_CHECK(bool_out.ok());
  double bool_ms = t.ElapsedMillis();
  IoStats bool_io = w.IoSince();

  PCUBE_CHECK_OK(w.ColdStart());
  t.Reset();
  auto rank = RankingFirstTopK(*w.tree(), *w.table(), preds, f, k);
  PCUBE_CHECK(rank.ok());
  double rank_ms = t.ElapsedMillis();
  IoStats rank_io = w.IoSince();

  PCUBE_CHECK_OK(w.ColdStart());
  t.Reset();
  auto merge = IndexMergeTopK(*w.tree(), w.indices(), preds, f, k);
  PCUBE_CHECK(merge.ok());
  double merge_ms = t.ElapsedMillis();
  IoStats merge_io = w.IoSince();

  PCUBE_CHECK_EQ(sig->results.size(), rank->results.size());
  for (size_t i = 0; i < sig->results.size(); ++i) {
    PCUBE_CHECK(std::abs(sig->results[i].key - rank->results[i].key) < 1e-9)
        << "methods disagree at rank " << i;
  }

  std::printf("\nmethod comparison (identical answers, cold caches):\n");
  std::printf("  %-12s %9s %12s %14s\n", "method", "cpu ms", "page reads",
              "of which DBool");
  auto row = [](const char* name, double ms, const IoStats& io) {
    std::printf("  %-12s %9.2f %12llu %14llu\n", name, ms,
                static_cast<unsigned long long>(io.TotalReads()),
                static_cast<unsigned long long>(
                    io.ReadCount(IoCategory::kBooleanVerify)));
  };
  row("Signature", sig_ms, sig_io);
  row("Boolean", bool_ms, bool_io);
  row("Ranking", rank_ms, rank_io);
  row("IndexMerge", merge_ms, merge_io);
  std::printf("\nWith a 5 ms page fetch (2008-class disk), the page-read "
              "column dominates:\nthe signature method touches the fewest "
              "pages because it prunes R-tree\nsubtrees that contain no red "
              "sedans before reading them.\n");
  return 0;
}
