file(REMOVE_RECURSE
  "CMakeFiles/camera_market.dir/camera_market.cpp.o"
  "CMakeFiles/camera_market.dir/camera_market.cpp.o.d"
  "camera_market"
  "camera_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camera_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
