#include "query/request.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace pcube {

namespace {

// Exact bit pattern of a float in hex — rounding- and locale-independent.
void AppendFloatBits(float v, std::string* out) {
  uint32_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  char buf[12];
  std::snprintf(buf, sizeof(buf), "%08x", static_cast<unsigned>(bits));
  out->append(buf);
}

void AppendU64(uint64_t v, std::string* out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out->append(buf);
}

// The shared canonical body: `preds` substitutes for the request's own
// predicate set (containment lookups probe subset families) and
// `include_k` distinguishes the exact key from the family key.
std::string CanonicalBody(const QueryRequest& q, const PredicateSet& preds,
                          bool include_k) {
  std::string s;
  s.reserve(96);
  s += q.kind == QueryRequest::Kind::kSkyline ? "skyline" : "topk";
  s += "|preds=";
  // PredicateSet keeps predicates sorted by dimension, so insertion order
  // cannot leak into the key.
  const auto& ps = preds.predicates();
  for (size_t i = 0; i < ps.size(); ++i) {
    if (i > 0) s.push_back(',');
    s += std::to_string(ps[i].dim);
    s.push_back(':');
    AppendU64(ps[i].value, &s);
  }
  if (q.kind == QueryRequest::Kind::kSkyline) {
    std::vector<int> dims = q.skyline.pref_dims;
    std::sort(dims.begin(), dims.end());
    dims.erase(std::unique(dims.begin(), dims.end()), dims.end());
    s += "|pref=";
    for (size_t i = 0; i < dims.size(); ++i) {
      if (i > 0) s.push_back(',');
      s += std::to_string(dims[i]);
    }
    s += "|origin=";
    for (size_t i = 0; i < q.skyline.origin.size(); ++i) {
      if (i > 0) s.push_back(',');
      AppendFloatBits(q.skyline.origin[i], &s);
    }
    s += "|band=";
    AppendU64(q.skyline.skyband_k, &s);
  } else {
    s += "|rank=";
    s += q.ranking ? q.ranking->CacheKey() : std::string();
    if (include_k) {
      s += "|k=";
      AppendU64(q.k, &s);
    }
  }
  return s;
}

}  // namespace

uint64_t Fnv1a64(const std::string& bytes) {
  uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

bool QueryRequest::Canonicalizable() const {
  if (kind == Kind::kSkyline) return true;
  return ranking != nullptr && !ranking->CacheKey().empty();
}

std::string QueryRequest::Canonical() const {
  if (!Canonicalizable()) return std::string();
  return CanonicalBody(*this, preds, /*include_k=*/true);
}

uint64_t QueryRequest::Fingerprint() const {
  if (!Canonicalizable()) return 0;
  return Fnv1a64(Canonical());
}

std::string QueryRequest::CanonicalFamily(const PredicateSet& p) const {
  if (!Canonicalizable()) return std::string();
  return CanonicalBody(*this, p, /*include_k=*/false);
}

uint64_t QueryRequest::FamilyFingerprint(const PredicateSet& p) const {
  if (!Canonicalizable()) return 0;
  return Fnv1a64(CanonicalFamily(p));
}

const char* CacheOutcomeName(CacheOutcome outcome) {
  switch (outcome) {
    case CacheOutcome::kNone:
      return "none";
    case CacheOutcome::kBypass:
      return "bypass";
    case CacheOutcome::kMiss:
      return "miss";
    case CacheOutcome::kHit:
      return "hit";
    case CacheOutcome::kContainment:
      return "containment";
  }
  return "none";
}

std::string QueryLogRecord(const QueryRequest& request,
                           const QueryResponse& response,
                           const std::string& tenant) {
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "{\"trace_id\":%llu,\"tenant\":\"%s\",\"kind\":\"%s\",\"preds\":\"%s\","
      "\"k\":%llu,"
      "\"plan\":\"%s\",\"cache\":\"%s\",\"shards\":%u,\"degraded\":%s,"
      "\"seconds\":%.9g,\"results\":%llu,"
      "\"io_reads\":%llu,\"counters\":{\"heap_peak\":%llu,"
      "\"nodes_expanded\":%llu,\"pruned_boolean\":%llu,"
      "\"pruned_preference\":%llu,\"verified\":%llu,\"sig_seconds\":%.9g},"
      "\"spans\":",
      static_cast<unsigned long long>(response.trace_id()), tenant.c_str(),
      request.kind == QueryRequest::Kind::kSkyline ? "skyline" : "topk",
      request.preds.ToString().c_str(),
      static_cast<unsigned long long>(
          request.kind == QueryRequest::Kind::kTopK ? request.k : 0),
      response.estimate.choice == PlanChoice::kSignature ? "signature"
                                                         : "boolean_first",
      CacheOutcomeName(response.cache),
      static_cast<unsigned>(response.fanout_shards),
      response.degraded ? "true" : "false",
      response.seconds, static_cast<unsigned long long>(response.tids.size()),
      static_cast<unsigned long long>(response.io.TotalReads()),
      static_cast<unsigned long long>(response.counters.heap_peak),
      static_cast<unsigned long long>(response.counters.nodes_expanded),
      static_cast<unsigned long long>(response.counters.pruned_boolean),
      static_cast<unsigned long long>(response.counters.pruned_preference),
      static_cast<unsigned long long>(response.counters.verified),
      response.counters.sig_seconds);
  return std::string(buf) + response.trace.SpansJson() + "}";
}

}  // namespace pcube
