// Persistent home of all signatures: partial signatures live one-per-page,
// indexed by a B+-tree on the composite key <cell id, SID> (paper §VI.A:
// "Signatures are compressed, decomposed and indexed (using B+-tree) by cell
// IDs and SID's"). Loads of partial-signature pages are charged to
// IoCategory::kSignature — the paper's "SSig" disk accesses.
//
// Thread-safety: after construction the store is read-only; LoadPartial and
// ListPartials are const, cache nothing locally, and may be called from any
// number of threads (the BufferPool serialises same-page access). Append /
// Rewrite are build- and maintenance-time only, single-threaded by contract.
#pragma once

#include <algorithm>
#include <map>
#include <optional>
#include <vector>

#include "common/status.h"
#include "core/signature.h"
#include "core/signature_codec.h"
#include "cube/cell.h"
#include "storage/bplus_tree.h"

namespace pcube {

/// Page-backed store of decomposed signatures.
class SignatureStore {
 public:
  /// SID values must fit in 40 bits (tree heights seen in practice give
  /// SIDs far below this; PathToSid guards the general overflow).
  static constexpr int kSidBits = 40;
  static constexpr uint64_t kMaxSid = (uint64_t{1} << kSidBits) - 1;
  /// Maximum partial-signature payload: one page. Partials from different
  /// cells are packed into shared pages; the directory value carries
  /// (page, offset, length), so loading any partial is one page read.
  static constexpr size_t kMaxPayload = kPageSize;

  static Result<SignatureStore> Create(BufferPool* pool);

  /// Re-attaches to a previously populated store (catalog-driven reopen).
  static SignatureStore Attach(BufferPool* pool, PageId index_root,
                               uint64_t index_entries, uint64_t index_pages,
                               std::map<CellId, uint32_t> dense,
                               uint64_t num_partials, uint64_t num_pages,
                               PageId append_page, uint32_t append_offset) {
    SignatureStore store(
        BPlusTree::Attach(pool, index_root, index_entries, index_pages), pool);
    store.dense_ = std::move(dense);
    store.next_dense_ = store.dense_.empty()
                            ? 0
                            : 1 + std::max_element(store.dense_.begin(),
                                                   store.dense_.end(),
                                                   [](auto& a, auto& b) {
                                                     return a.second < b.second;
                                                   })
                                      ->second;
    store.num_partials_ = num_partials;
    store.num_pages_ = num_pages;
    store.append_page_ = append_page;
    store.append_offset_ = append_offset;
    return store;
  }

  /// Reopen support: the in-memory cell directory and append cursor.
  const std::map<CellId, uint32_t>& dense_cells() const { return dense_; }
  PageId append_page() const { return append_page_; }
  uint32_t append_offset() const { return append_offset_; }
  uint64_t num_index_entries() const { return index_.num_entries(); }

  /// Writes the decomposed form of `sig` for `cell`, replacing any previous
  /// version: partials with the same SID are overwritten in place, removed
  /// SIDs are tombstoned, new SIDs get fresh pages.
  Status Put(CellId cell, const Signature& sig);

  /// Loads the payload of the partial signature <cell, sid>; NotFound when
  /// the cell has no partial rooted there.
  Result<std::vector<uint8_t>> LoadPartial(CellId cell, uint64_t sid) const;

  /// SIDs of all partials of `cell`, ascending (== generation order).
  Result<std::vector<uint64_t>> ListPartials(CellId cell) const;

  /// Reassembles the full signature of `cell` (empty signature when the cell
  /// was never stored). Used by incremental maintenance and tests.
  Result<Signature> LoadFull(CellId cell, uint32_t fanout, int levels) const;

  /// True when at least one partial exists for `cell`.
  Result<bool> HasCell(CellId cell) const;

  /// Rewrites every live partial into freshly packed pages and returns the
  /// old data pages to the page manager's free list. Run after heavy
  /// maintenance: in-place updates leak slot space when partials grow or
  /// are tombstoned. (After a catalog reopen the old page list is unknown,
  /// so compaction repacks but cannot reclaim — compact before Save().)
  Status Compact();

  uint64_t num_partials() const { return num_partials_; }
  uint64_t num_pages() const { return num_pages_; }
  const BPlusTree& index() const { return index_; }

  /// Distinct page ids holding at least one live partial (full directory
  /// scan). Integrity checking and fault-injection tooling use this to
  /// enumerate — or deliberately damage — every signature data page.
  Result<std::vector<PageId>> DataPages() const;

 private:
  explicit SignatureStore(BPlusTree index, BufferPool* pool)
      : index_(std::move(index)), pool_(pool) {}

  /// CellIds are sparse 64-bit values; the index key packs a dense 24-bit
  /// cell number with the 40-bit SID. The dense map is in-memory metadata
  /// (rebuildable from the cuboid list).
  static uint64_t MakeKey(uint32_t dense_cell, uint64_t sid);
  Result<uint32_t> DenseId(CellId cell) const;
  uint32_t InternCell(CellId cell);
  /// Appends a blob to the packed data pages; returns its packed location.
  Result<uint64_t> AppendBlob(const std::vector<uint8_t>& bytes);

  BPlusTree index_;
  BufferPool* pool_;
  std::map<CellId, uint32_t> dense_;
  uint32_t next_dense_ = 0;
  uint64_t num_partials_ = 0;
  uint64_t num_pages_ = 0;
  PageId append_page_ = kInvalidPageId;
  uint32_t append_offset_ = 0;
  /// Data pages owned by this store (for Compact's reclamation).
  std::vector<PageId> data_pages_;
};

}  // namespace pcube
