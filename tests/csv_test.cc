// CSV import tests: parsing, dictionary coding, quoting, error handling.
#include <gtest/gtest.h>

#include <sstream>

#include "data/csv.h"

namespace pcube {
namespace {

TEST(CsvTest, BasicImportWithHeader) {
  std::istringstream in(
      "type,color,price,mileage\n"
      "sedan,red,0.5,0.3\n"
      "suv,blue,0.7,0.1\n"
      "sedan,blue,0.2,0.9\n");
  auto table = ReadCsv(in, "bbpp", /*has_header=*/true);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->data.num_tuples(), 3u);
  EXPECT_EQ(table->data.num_bool(), 2);
  EXPECT_EQ(table->data.num_pref(), 2);
  EXPECT_EQ(table->bool_names, (std::vector<std::string>{"type", "color"}));
  EXPECT_EQ(table->pref_names, (std::vector<std::string>{"price", "mileage"}));
  // Dictionary coding in order of first appearance.
  EXPECT_EQ(table->dictionaries[0],
            (std::vector<std::string>{"sedan", "suv"}));
  EXPECT_EQ(table->dictionaries[1], (std::vector<std::string>{"red", "blue"}));
  EXPECT_EQ(table->data.BoolValue(0, 0), 0u);  // sedan
  EXPECT_EQ(table->data.BoolValue(1, 0), 1u);  // suv
  EXPECT_EQ(table->data.BoolValue(2, 1), 1u);  // blue
  EXPECT_FLOAT_EQ(table->data.PrefValue(2, 1), 0.9f);
  EXPECT_EQ(table->data.schema().bool_cardinality[0], 2u);
}

TEST(CsvTest, SkippedColumnsAndNoHeader) {
  std::istringstream in(
      "a,ignored,0.1,x\n"
      "b,junk,0.2,y\n");
  auto table = ReadCsv(in, "b-p", /*has_header=*/false);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->data.num_tuples(), 2u);
  EXPECT_EQ(table->data.num_bool(), 1);
  EXPECT_EQ(table->data.num_pref(), 1);
  EXPECT_FLOAT_EQ(table->data.PrefValue(1, 0), 0.2f);
}

TEST(CsvTest, QuotedFields) {
  std::istringstream in(
      "\"sedan, sporty\",0.5\n"
      "\"say \"\"hi\"\"\",0.25\n");
  auto table = ReadCsv(in, "bp", false);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->dictionaries[0][0], "sedan, sporty");
  EXPECT_EQ(table->dictionaries[0][1], "say \"hi\"");
}

TEST(CsvTest, RejectsBadSpec) {
  std::istringstream in("a,0.5\n");
  EXPECT_TRUE(ReadCsv(in, "bx", false).status().IsInvalidArgument());
  std::istringstream in2("a,b\n");
  EXPECT_TRUE(ReadCsv(in2, "bb", false).status().IsInvalidArgument());
}

TEST(CsvTest, RejectsRaggedRows) {
  std::istringstream in("a,0.5\nb\n");
  EXPECT_TRUE(ReadCsv(in, "bp", false).status().IsInvalidArgument());
}

TEST(CsvTest, RejectsNonNumericPreference) {
  std::istringstream in("a,cheap\n");
  auto r = ReadCsv(in, "bp", false);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("non-numeric"), std::string::npos);
}

TEST(CsvTest, EmptyInputYieldsEmptyDataset) {
  std::istringstream in("");
  auto table = ReadCsv(in, "bp", false);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->data.num_tuples(), 0u);
}

TEST(CsvTest, BlankLinesSkipped) {
  std::istringstream in("a,0.5\n\n\nb,0.7\n");
  auto table = ReadCsv(in, "bp", false);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->data.num_tuples(), 2u);
}

}  // namespace
}  // namespace pcube
