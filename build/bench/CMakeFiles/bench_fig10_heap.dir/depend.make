# Empty dependencies file for bench_fig10_heap.
# This may be replaced when dependencies are built.
