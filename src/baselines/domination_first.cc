#include "baselines/domination_first.h"

namespace pcube {

Result<SkylineOutput> DominationFirstSkyline(const RStarTree& tree,
                                             const TableStore& table,
                                             const PredicateSet& preds,
                                             std::vector<int> pref_dims) {
  TrueProbe probe;
  TupleVerifier verifier(&table, preds);
  SkylineQueryOptions options;
  options.pref_dims = std::move(pref_dims);
  SkylineEngine engine(&tree, &probe, preds.empty() ? nullptr : &verifier,
                       options);
  return engine.Run();
}

Result<TopKOutput> RankingFirstTopK(const RStarTree& tree,
                                    const TableStore& table,
                                    const PredicateSet& preds,
                                    const RankingFunction& f, size_t k) {
  TrueProbe probe;
  TupleVerifier verifier(&table, preds);
  TopKEngine engine(&tree, &probe, preds.empty() ? nullptr : &verifier, &f, k);
  return engine.Run();
}

}  // namespace pcube
