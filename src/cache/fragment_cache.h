// L2 of the query cache: decoded signature bit-tree nodes, keyed by
// (cell, partial-signature SID) and shared across queries. The BufferPool
// below already caches raw signature *pages*; this layer caches the result
// of running the bitmap codec over them, so concurrent batch workers
// probing the same hot cells decode each partial once instead of once per
// query ("decode-once, probe-many"). Entries are immutable snapshots
// handed out by shared_ptr — readers never block each other beyond one
// shard mutex, and invalidation is epoch-based and lazy (see epoch.h).
//
// Negative entries (the store has no partial for this SID) are cached too:
// the cursor's probing rule touches many non-existent SIDs per query, and
// each would otherwise cost a store lookup.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "bitmap/bitvector.h"
#include "cache/epoch.h"
#include "cache/slru.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/simd/aligned.h"
#include "rtree/path.h"

namespace pcube {

/// One cached decode: the nodes this partial contributed to the fragment,
/// in the order the codec produced them, with every node's bit words packed
/// into one contiguous 32-byte-aligned block (DESIGN.md §12). Each node's
/// slice starts on a 4-word (32-byte) boundary, so replaying a hit hands
/// the kernel layer aligned operands from one allocation instead of one
/// heap vector per node. `present == false` caches a NotFound (the block is
/// then empty).
struct CachedFragment {
  /// Locates one node's bits inside `words`.
  struct NodeRef {
    Path path;
    uint32_t word_offset = 0;  ///< into `words`; always a multiple of 4
    uint32_t num_bits = 0;
  };

  bool present = false;
  std::vector<NodeRef> nodes;
  simd::AlignedVector<uint64_t> words;  ///< packed node payloads
  uint64_t epoch = 0;  ///< DataEpoch::OfCell at fill time
  size_t charge = 0;   ///< approximate bytes, for the SLRU budget

  size_t num_nodes() const { return nodes.size(); }
  const Path& path(size_t i) const { return nodes[i].path; }
  /// The packed words of node i (exactly Words64(num_bits) of them; the
  /// alignment padding after them is not part of the vector).
  std::span<const uint64_t> node_words(size_t i) const;
  /// Materialises node i as a standalone BitVector (copies the slice).
  BitVector NodeBits(size_t i) const;
};

/// Sharded SLRU cache of decoded partial signatures.
/// Thread-safe; all methods may be called concurrently.
class FragmentCache {
 public:
  /// `capacity_bytes` is the total budget across shards; `epoch` must
  /// outlive the cache.
  FragmentCache(size_t capacity_bytes, const DataEpoch* epoch);

  /// Returns the cached decode of (cell, sid) if present AND still at the
  /// cell's current epoch; stale entries are erased (counted as stale, not
  /// miss) and nullptr returned.
  std::shared_ptr<const CachedFragment> Lookup(CellId cell, uint64_t sid);

  /// Caches a decode stamped with `epoch` (read BEFORE the store load, so
  /// a concurrent update can only make the entry look stale, never fresh).
  void Insert(CellId cell, uint64_t sid, bool present,
              std::vector<std::pair<Path, BitVector>> nodes, uint64_t epoch);

  size_t bytes() const { return bytes_.load(std::memory_order_relaxed); }
  size_t entries() const { return entries_.load(std::memory_order_relaxed); }

  /// The epoch registry entries are validated against (fill paths read the
  /// stamp through this BEFORE loading from the store).
  const DataEpoch* epoch() const { return epoch_; }

 private:
  struct Key {
    CellId cell;
    uint64_t sid;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t x = (k.cell ^ (k.sid * 0x9e3779b97f4a7c15ULL)) + k.sid;
      x ^= x >> 33;
      x *= 0xff51afd7ed558ccdULL;
      x ^= x >> 33;
      return static_cast<size_t>(x);
    }
  };
  static constexpr size_t kShards = 16;
  /// Lock order: shard mutexes are leaves and never nested (one shard per
  /// Lookup/Insert; the codec decode happens before the lock is taken).
  struct Shard {
    Mutex mu;
    SlruShard<Key, std::shared_ptr<const CachedFragment>, KeyHash> slru
        GUARDED_BY(mu);
  };
  Shard& ShardOf(const Key& k) {
    return shards_[KeyHash{}(k) >> 57 & (kShards - 1)];
  }

  const DataEpoch* epoch_;
  std::unique_ptr<Shard[]> shards_;
  std::atomic<size_t> bytes_{0};
  std::atomic<size_t> entries_{0};

  Counter* hits_;
  Counter* misses_;
  Counter* stale_;
  Counter* evictions_;
};

}  // namespace pcube
