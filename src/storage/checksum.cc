#include "storage/checksum.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>

#include "common/metrics.h"

namespace pcube {

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table;
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

// 0 is the "no checksum recorded" sentinel in the table, so a genuine CRC
// of 0 folds to 1.
uint32_t Fold(uint32_t crc) { return crc == 0 ? 1u : crc; }

constexpr char kSidecarMagic[4] = {'P', 'C', 'H', 'K'};
constexpr uint32_t kSidecarVersion = 1;

}  // namespace

uint32_t Crc32(const void* data, size_t n) {
  static const std::array<uint32_t, 256> kTable = MakeCrcTable();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = kTable[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

ChecksumPageManager::ChecksumPageManager(std::unique_ptr<PageManager> inner,
                                         std::string sidecar_path)
    : inner_(std::move(inner)),
      sidecar_path_(std::move(sidecar_path)),
      failures_metric_(MetricsRegistry::Default().GetCounter(
          "pcube_io_checksum_failures_total")) {
  sums_.assign(inner_->NumPages(), 0);
  if (!sidecar_path_.empty()) {
    // A missing or stale sidecar is legacy data, not an error: those pages
    // stay at "unknown" and adopt their checksum on first read.
    LoadSidecar().IgnoreError();
  }
}

Result<PageId> ChecksumPageManager::Allocate() {
  auto pid = inner_->Allocate();
  if (!pid.ok()) return pid;
  if (*pid >= sums_.size()) sums_.resize(*pid + 1, 0);
  // Fresh pages are zeroed by contract; record the zero-page CRC so even a
  // never-written page is verified from its first read.
  static const uint32_t kZeroPageCrc = [] {
    Page zero;
    zero.Zero();
    return Fold(Crc32(zero.data(), kPageSize));
  }();
  sums_[*pid] = kZeroPageCrc;
  return pid;
}

Status ChecksumPageManager::Read(PageId pid, Page* out) {
  PCUBE_RETURN_NOT_OK(inner_->Read(pid, out));
  uint32_t computed = Fold(Crc32(out->data(), kPageSize));
  uint32_t stored = pid < sums_.size() ? sums_[pid] : 0;
  if (stored == 0) {
    // Legacy page with no recorded checksum: adopt the current content.
    if (pid >= sums_.size()) sums_.resize(pid + 1, 0);
    sums_[pid] = computed;
    return Status::OK();
  }
  if (stored != computed) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    failures_metric_->Increment();
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "checksum mismatch on page %llu: stored %08x computed %08x",
                  static_cast<unsigned long long>(pid), stored, computed);
    return Status::Corruption(buf);
  }
  return Status::OK();
}

Status ChecksumPageManager::Write(PageId pid, const Page& page) {
  PCUBE_RETURN_NOT_OK(inner_->Write(pid, page));
  if (pid >= sums_.size()) sums_.resize(pid + 1, 0);
  sums_[pid] = Fold(Crc32(page.data(), kPageSize));
  return Status::OK();
}

Status ChecksumPageManager::Free(PageId pid) {
  PCUBE_RETURN_NOT_OK(inner_->Free(pid));
  // The page's content is now undefined until reallocated.
  if (pid < sums_.size()) sums_[pid] = 0;
  return Status::OK();
}

Status ChecksumPageManager::LoadSidecar() {
  std::FILE* f = std::fopen(sidecar_path_.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("no sidecar: " + sidecar_path_);
  char magic[4];
  uint32_t version = 0;
  uint64_t count = 0;
  bool header_ok = std::fread(magic, 1, 4, f) == 4 &&
                   std::fread(&version, sizeof(version), 1, f) == 1 &&
                   std::fread(&count, sizeof(count), 1, f) == 1;
  if (!header_ok || std::memcmp(magic, kSidecarMagic, 4) != 0 ||
      version != kSidecarVersion) {
    std::fclose(f);
    return Status::Corruption("bad sidecar header: " + sidecar_path_);
  }
  // Only adopt checksums for pages the file actually has; a sidecar from
  // before the file grew leaves the new pages at "unknown".
  uint64_t usable = std::min<uint64_t>(count, sums_.size());
  if (usable > 0 &&
      std::fread(sums_.data(), sizeof(uint32_t), usable, f) != usable) {
    std::fclose(f);
    sums_.assign(inner_->NumPages(), 0);
    return Status::Corruption("truncated sidecar: " + sidecar_path_);
  }
  std::fclose(f);
  return Status::OK();
}

Status ChecksumPageManager::SyncSidecar() {
  if (sidecar_path_.empty()) return Status::OK();
  std::FILE* f = std::fopen(sidecar_path_.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("open sidecar for write: " + sidecar_path_);
  }
  uint64_t count = sums_.size();
  bool ok = std::fwrite(kSidecarMagic, 1, 4, f) == 4 &&
            std::fwrite(&kSidecarVersion, sizeof(kSidecarVersion), 1, f) == 1 &&
            std::fwrite(&count, sizeof(count), 1, f) == 1 &&
            (count == 0 ||
             std::fwrite(sums_.data(), sizeof(uint32_t), count, f) == count);
  ok = std::fclose(f) == 0 && ok;
  if (!ok) return Status::IoError("write sidecar: " + sidecar_path_);
  return Status::OK();
}

}  // namespace pcube
