# Empty dependencies file for pcube_baselines.
# This may be replaced when dependencies are built.
