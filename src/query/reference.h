// Naive reference implementations: full-scan skyline and top-k over the
// in-memory Dataset. Quadratic / sort-based, used as ground truth by the
// test suite and by the Boolean-first baseline's in-memory evaluation step.
#pragma once

#include <vector>

#include "cube/cell.h"
#include "cube/relation.h"
#include "query/ranking.h"

namespace pcube {

/// True iff tuple `a` dominates tuple `b` on `dims` (all <=, one <).
bool DominatesOn(const Dataset& data, TupleId a, TupleId b,
                 const std::vector<int>& dims);

/// Skyline of the tuples satisfying `preds`, on preference dimensions
/// `dims` (empty = all). Returns ascending TupleIds.
std::vector<TupleId> NaiveSkyline(const Dataset& data, const PredicateSet& preds,
                                  std::vector<int> dims = {});

/// Top-k of the tuples satisfying `preds` under `f`; ascending score, ties
/// broken by TupleId for determinism.
std::vector<std::pair<TupleId, double>> NaiveTopK(const Dataset& data,
                                                  const PredicateSet& preds,
                                                  const RankingFunction& f,
                                                  size_t k);

/// Sort-filter skyline over an explicit tuple subset (points given by tid);
/// the in-memory algorithm the Boolean-first baseline applies after its
/// selection step. O(n log n + n * |skyline|).
std::vector<TupleId> SortFilterSkyline(const Dataset& data,
                                       std::vector<TupleId> tids,
                                       const std::vector<int>& dims);

/// Generalised reference: skyband (tuples dominated by < k others) of the
/// tuples satisfying `preds`, optionally in the dynamic-skyline space
/// |x - origin| (paper §VII). k = 1, empty origin = ordinary skyline.
std::vector<TupleId> NaiveSkyband(const Dataset& data,
                                  const PredicateSet& preds,
                                  std::vector<int> dims = {},
                                  std::vector<float> origin = {},
                                  size_t skyband_k = 1);

}  // namespace pcube
