// Round-trip and adaptivity tests for the node-level bitmap codecs
// (verbatim / WAH / sparse).
#include <gtest/gtest.h>

#include "bitmap/codec.h"
#include "common/random.h"

namespace pcube {
namespace {

BitVector FromPositions(size_t n, std::vector<uint32_t> positions) {
  BitVector v(n);
  for (uint32_t p : positions) v.Set(p);
  return v;
}

void ExpectRoundTrip(BitmapScheme scheme, const BitVector& bits) {
  std::vector<uint8_t> buf;
  BitmapCodec::EncodeWith(scheme, bits, &buf);
  size_t offset = 0;
  BitVector decoded;
  ASSERT_TRUE(BitmapCodec::Decode(buf.data(), buf.size(), &offset, &decoded).ok());
  EXPECT_EQ(offset, buf.size());
  EXPECT_TRUE(decoded == bits) << "scheme " << static_cast<int>(scheme);
}

TEST(BitmapCodecTest, RoundTripAllSchemesSmall) {
  BitVector bits = FromPositions(10, {0, 3, 9});
  for (auto scheme : {BitmapScheme::kVerbatim, BitmapScheme::kWah,
                      BitmapScheme::kSparse}) {
    ExpectRoundTrip(scheme, bits);
  }
}

TEST(BitmapCodecTest, RoundTripEmptyAndFull) {
  for (size_t n : {1u, 31u, 32u, 62u, 63u, 100u, 255u}) {
    BitVector empty(n);
    BitVector full(n);
    for (size_t i = 0; i < n; ++i) full.Set(i);
    for (auto scheme : {BitmapScheme::kVerbatim, BitmapScheme::kWah,
                        BitmapScheme::kSparse}) {
      ExpectRoundTrip(scheme, empty);
      ExpectRoundTrip(scheme, full);
    }
  }
}

TEST(BitmapCodecTest, AdaptivePicksSmallest) {
  // Very sparse array: sparse coding must win over verbatim.
  BitVector sparse = FromPositions(2000, {1500});
  std::vector<uint8_t> buf;
  BitmapCodec::Encode(sparse, &buf);
  auto scheme = BitmapCodec::PeekScheme(buf.data(), buf.size());
  ASSERT_TRUE(scheme.ok());
  EXPECT_NE(*scheme, BitmapScheme::kVerbatim);
  EXPECT_LT(buf.size(), size_t{2000 / 8});
  ExpectRoundTrip(*scheme, sparse);
}

TEST(BitmapCodecTest, AdaptiveDenseStaysCompact) {
  Random rng(1);
  BitVector dense(256);
  for (size_t i = 0; i < 256; ++i) {
    if (rng.Uniform(2) == 0) dense.Set(i);
  }
  std::vector<uint8_t> buf;
  BitmapCodec::Encode(dense, &buf);
  // Never worse than verbatim + header.
  EXPECT_LE(buf.size(), 3 + 32u);
}

TEST(BitmapCodecTest, EncodedSizeMatchesEncode) {
  Random rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    size_t n = 1 + rng.Uniform(400);
    BitVector bits(n);
    for (size_t i = 0; i < n; ++i) {
      if (rng.Uniform(4) == 0) bits.Set(i);
    }
    std::vector<uint8_t> buf;
    BitmapCodec::Encode(bits, &buf);
    EXPECT_EQ(BitmapCodec::EncodedSize(bits), buf.size());
  }
}

TEST(BitmapCodecTest, SequentialDecodeOfConcatenatedArrays) {
  std::vector<BitVector> arrays;
  std::vector<uint8_t> buf;
  Random rng(3);
  for (int i = 0; i < 20; ++i) {
    size_t n = 1 + rng.Uniform(200);
    BitVector bits(n);
    for (size_t j = 0; j < n; ++j) {
      if (rng.Uniform(3) == 0) bits.Set(j);
    }
    BitmapCodec::Encode(bits, &buf);
    arrays.push_back(std::move(bits));
  }
  size_t offset = 0;
  for (const BitVector& expect : arrays) {
    BitVector decoded;
    ASSERT_TRUE(
        BitmapCodec::Decode(buf.data(), buf.size(), &offset, &decoded).ok());
    EXPECT_TRUE(decoded == expect);
  }
  EXPECT_EQ(offset, buf.size());
}

TEST(BitmapCodecTest, DecodeRejectsTruncation) {
  BitVector bits = FromPositions(100, {5, 50, 99});
  std::vector<uint8_t> buf;
  BitmapCodec::Encode(bits, &buf);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    size_t offset = 0;
    BitVector decoded;
    Status st = BitmapCodec::Decode(buf.data(), cut, &offset, &decoded);
    EXPECT_FALSE(st.ok()) << "cut at " << cut;
  }
}

TEST(BitmapCodecTest, DecodeRejectsBadScheme) {
  std::vector<uint8_t> buf = {0x7F, 10, 0};
  size_t offset = 0;
  BitVector decoded;
  EXPECT_FALSE(BitmapCodec::Decode(buf.data(), buf.size(), &offset, &decoded).ok());
  EXPECT_FALSE(BitmapCodec::PeekScheme(buf.data(), buf.size()).ok());
}

// Property: all three schemes round-trip random arrays at several densities.
class CodecPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CodecPropertyTest, RoundTripRandom) {
  auto [seed, density_pct] = GetParam();
  Random rng(seed);
  for (int trial = 0; trial < 30; ++trial) {
    size_t n = 1 + rng.Uniform(500);
    BitVector bits(n);
    for (size_t i = 0; i < n; ++i) {
      if (rng.Uniform(100) < static_cast<uint64_t>(density_pct)) bits.Set(i);
    }
    for (auto scheme : {BitmapScheme::kVerbatim, BitmapScheme::kWah,
                        BitmapScheme::kSparse}) {
      ExpectRoundTrip(scheme, bits);
    }
    std::vector<uint8_t> buf;
    BitmapCodec::Encode(bits, &buf);
    size_t offset = 0;
    BitVector decoded;
    ASSERT_TRUE(
        BitmapCodec::Decode(buf.data(), buf.size(), &offset, &decoded).ok());
    EXPECT_TRUE(decoded == bits);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndDensities, CodecPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(1, 10, 50, 90, 99)));

}  // namespace
}  // namespace pcube
