// Vectorized bulk boolean algebra over 64-bit word arrays — the compute
// core behind BitVector's in-place operators, the bitmap codec's verbatim
// fast paths and the WAH literal fallback (DESIGN.md §12). Each operation
// has a portable scalar implementation (64 bits per step) and an AVX2 one
// (256 bits per step); the unsuffixed entry points dispatch through
// simd::ActiveSimdLevel() once per call and count invocations in
// pcube_simd_kernel_calls_total{kernel="..."}.
//
// Aliasing: `dst` may alias `a` (the in-place case) but not partially
// overlap either input. All lengths are in 64-bit words; arrays from
// AlignedVector honour the 32-byte base-pointer contract but the kernels
// use unaligned loads, so interior pointers are also legal.
//
// The per-level variants (suffixed Scalar/Avx2) exist for the differential
// tests and the kernel benchmark; Avx2 variants must only be called when
// CpuSupportsAvx2() is true.
#pragma once

#include <cstddef>
#include <cstdint>

namespace pcube::simd {

/// dst[i] = a[i] & b[i]; returns true when any result word is non-zero
/// (fused with the AND so signature intersection needs no second pass).
bool AndWords(uint64_t* dst, const uint64_t* a, const uint64_t* b, size_t n);

/// dst[i] = a[i] | b[i].
void OrWords(uint64_t* dst, const uint64_t* a, const uint64_t* b, size_t n);

/// dst[i] = a[i] & ~b[i].
void AndNotWords(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                 size_t n);

/// Total set bits across the array (hardware POPCNT when dispatched).
uint64_t PopcountWords(const uint64_t* a, size_t n);

/// Set bits of the intersection, without materialising it.
uint64_t AndPopcountWords(const uint64_t* a, const uint64_t* b, size_t n);

/// True when any word is non-zero.
bool AnyWords(const uint64_t* a, size_t n);

// Per-level variants (tests/bench only; see header comment).
bool AndWordsScalar(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                    size_t n);
void OrWordsScalar(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                   size_t n);
void AndNotWordsScalar(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                       size_t n);
uint64_t PopcountWordsScalar(const uint64_t* a, size_t n);
uint64_t AndPopcountWordsScalar(const uint64_t* a, const uint64_t* b,
                                size_t n);
bool AnyWordsScalar(const uint64_t* a, size_t n);

#if defined(__x86_64__) && !defined(PCUBE_SIMD_DISABLED)
#define PCUBE_SIMD_HAVE_AVX2 1
bool AndWordsAvx2(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                  size_t n);
void OrWordsAvx2(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                 size_t n);
void AndNotWordsAvx2(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                     size_t n);
uint64_t PopcountWordsAvx2(const uint64_t* a, size_t n);
uint64_t AndPopcountWordsAvx2(const uint64_t* a, const uint64_t* b, size_t n);
bool AnyWordsAvx2(const uint64_t* a, size_t n);
#endif

}  // namespace pcube::simd
