#include "query/convex_hull.h"

#include <algorithm>

#include "query/reference.h"

namespace pcube {

namespace {

struct Pt {
  double x;
  double y;
  TupleId tid;
};

double Cross(const Pt& o, const Pt& a, const Pt& b) {
  return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x);
}

/// Lower-left convex chain of mutually non-dominated points: sort by x
/// ascending (ties: y ascending), keep only strictly convex turns. Skyline
/// points have strictly decreasing y in this order, so the chain runs from
/// the min-x point to the min-y point — exactly the minimisers of
/// non-negative linear functions.
std::vector<Pt> LowerLeftHull(std::vector<Pt> pts) {
  std::sort(pts.begin(), pts.end(), [](const Pt& a, const Pt& b) {
    if (a.x != b.x) return a.x < b.x;
    if (a.y != b.y) return a.y < b.y;
    return a.tid < b.tid;
  });
  std::vector<Pt> hull;
  for (const Pt& p : pts) {
    while (hull.size() >= 2 &&
           Cross(hull[hull.size() - 2], hull[hull.size() - 1], p) <= 0) {
      hull.pop_back();
    }
    hull.push_back(p);
  }
  return hull;
}

}  // namespace

Result<ConvexHullOutput> ConvexHullQuery(const RStarTree& tree,
                                         BooleanProbe* probe, int dim_x,
                                         int dim_y) {
  SkylineQueryOptions options;
  options.pref_dims = {dim_x, dim_y};
  SkylineEngine engine(&tree, probe, nullptr, options);
  auto skyline = engine.Run();
  if (!skyline.ok()) return skyline.status();

  std::vector<Pt> pts;
  pts.reserve(skyline->skyline.size());
  for (const SearchEntry& e : skyline->skyline) {
    pts.push_back({e.rect.min[dim_x], e.rect.min[dim_y], e.id});
  }
  ConvexHullOutput out;
  for (const Pt& p : LowerLeftHull(std::move(pts))) {
    out.hull.push_back({p.tid, static_cast<float>(p.x),
                        static_cast<float>(p.y)});
  }
  out.skyline = std::move(*skyline);
  return out;
}

std::vector<TupleId> NaiveConvexHull(const Dataset& data,
                                     const PredicateSet& preds, int dim_x,
                                     int dim_y) {
  std::vector<TupleId> sky = NaiveSkyline(data, preds, {dim_x, dim_y});
  std::vector<Pt> pts;
  pts.reserve(sky.size());
  for (TupleId t : sky) {
    pts.push_back({data.PrefValue(t, dim_x), data.PrefValue(t, dim_y), t});
  }
  std::vector<TupleId> out;
  for (const Pt& p : LowerLeftHull(std::move(pts))) out.push_back(p.tid);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace pcube
