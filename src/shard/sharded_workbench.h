// Horizontal sharding: N in-process Workbench shards behind one
// scatter-gather coordinator (ROADMAP item 2, DESIGN.md §13). Build()
// splits the relation by boolean-row hash (shard_map.h), builds one full
// Workbench per non-empty shard, and keeps the global Dataset plus the
// local -> global tid maps. Run() consults the coordinator-level L1 result
// cache FIRST — the cache sits above the fan-out, so a hot request is
// served without touching any shard — then scatters the request over the
// coordinator's ThreadPool (one sub-query per live shard, executed
// BatchExecutor-style: private probe + engine, per-thread I/O attribution,
// no cold-start) and merges:
//   * skyline / k-skyband — union of the local skyband lists, then one
//     dominance-filter pass over the union using the SoA DominanceWindow.
//     Sound and exact: dominance is decided per pair, so every global
//     skyband member is in its own shard's local skyband (its global
//     dominators are a superset of its shard-local ones), and counting a
//     candidate's dominators within the union — saturating at k — equals
//     the global count's saturation because each shard's local list retains
//     min(k, |local dominators|) of them.
//   * top-k — k-way heap merge of the per-shard ascending score lists,
//     tie-broken by global tid.
// Shards are built with result_cache_mb = 0 (one semantic cache, at the
// coordinator) but keep their private L2 fragment caches, which see the
// batched probe access pattern the fan-out produces.
//
// Thread-safety: Run/RunBatch may be called concurrently from any number
// of threads — the shared state (ThreadPool, ResultCache, DataEpoch, each
// shard's BufferPool/FragmentCache, the metrics registry) is thread-safe,
// and every sub-query builds its own probe and engine. The coordinator
// never submits pool work from inside pool tasks (no nested-Submit
// deadlock). Shards must not be mutated while queries run.
#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_pool.h"
#include "shard/shard_map.h"
#include "workbench/query_service.h"
#include "workbench/workbench.h"

namespace pcube {

/// Knobs of a sharded deployment.
struct ShardedOptions {
  /// Number of hash partitions (>= 1; 1 degenerates to a fan-out of one).
  size_t num_shards = 2;
  /// Options applied to every shard's Workbench::Build. result_cache_mb
  /// and file_path are overridden (0 / in-memory): the semantic cache
  /// lives at the coordinator and shards are rebuilt from the partition.
  WorkbenchOptions shard;
  /// Coordinator-level L1 result cache budget in MiB; 0 disables it.
  size_t result_cache_mb = 16;
  /// L1 containment reuse (top-k filter pass; see result_cache.h).
  bool enable_containment = true;
  /// Threads of the coordinator's fan-out pool; 0 = num_shards.
  size_t fanout_threads = 0;
};

/// Scatter-gather coordinator over N in-process Workbench shards.
class ShardedWorkbench : public QueryService {
 public:
  /// Partitions `data` and builds every non-empty shard. Empty shards
  /// (possible on small or skewed relations) stay uninstantiated and are
  /// skipped by the fan-out.
  static Result<std::unique_ptr<ShardedWorkbench>> Build(
      Dataset data, ShardedOptions options);

  /// Coordinator entry point: L1 lookup, scatter, gather, merge, publish.
  /// Plan hints cannot be honoured across shards (sub-queries always run
  /// the signature engines, like batches); a forced hint still bypasses
  /// the cache, matching the planner's contract.
  Result<QueryResponse> Run(const QueryRequest& request) override;

  /// Run() is already safe for concurrent callers (see the thread-safety
  /// note above), so the shared entry point is the same path.
  Result<QueryResponse> RunShared(const QueryRequest& request) override {
    return Run(request);
  }

  /// Batch variant: per-query L1 on the driver thread, then one
  /// (query x shard) task grid over a fresh pool of `num_workers` threads.
  /// Unlike BatchExecutor, merged results carry no engine state —
  /// BatchQueryResult::skyline/topk stay unset (b_list/d_list are
  /// per-shard constructs that do not compose across trees).
  BatchOutput RunBatch(const std::vector<BatchQuery>& queries,
                       size_t num_workers,
                       QueryLog* query_log = nullptr) override;

  /// Sum of the per-shard planner estimates (each shard would run its own
  /// plan; the aggregate picks the cheaper total, reported for explain).
  Result<PlanEstimate> Estimate(const PredicateSet& preds) override;

  /// Routed mutation (QueryService::Apply): inserts are hashed over the
  /// LIVE shards by boolean row (same-valued tuples keep co-locating, a
  /// perf nicety — queries scatter to every live shard regardless), deletes
  /// follow the global tid -> (shard, local tid) map, and every shard
  /// sub-batch is applied with Ack::kApplied so the coordinator's return
  /// implies read-your-writes across the fan-out. The whole batch is
  /// validated (including delete tids and shard tombstones) before any
  /// shard or the global view is touched, so a logically invalid batch is
  /// rejected wholly; if a shard still fails its sub-batch (storage fault),
  /// the coordinator reconciles the global tid maps back to the shard's
  /// actual row count so later writes and merges stay exact. Coordinator
  /// writers serialize among themselves; queries run concurrently except
  /// for the short exclusive windows that extend (or reconcile) the global
  /// tid maps. Durability is per-shard: shards are in-memory rebuilds, so
  /// `durable` comes back false (a sharded deployment persists via its
  /// source relation).
  Result<WriteResult> Apply(const WriteBatch& batch) override;

  const Dataset& data() const override { return data_; }
  DataEpoch* epoch() override { return &epoch_; }
  ResultCache* result_cache() override { return result_cache_.get(); }
  size_t num_shards() const override { return shards_.size(); }
  std::string DescribeShards() const override;
  void ExportMetrics(MetricsRegistry* registry) const override;

  /// Shards that actually hold tuples (<= num_shards()).
  size_t live_shards() const { return live_shards_; }
  /// Direct access for tests; null when shard `i` is empty.
  Workbench* shard(size_t i) { return shards_[i].get(); }

 private:
  /// Outcome of one per-shard sub-query; tids are GLOBAL ids already.
  struct SubResult {
    Status status;
    std::vector<TupleId> tids;
    std::vector<double> scores;  ///< top-k only, aligned with tids
    EngineCounters counters;
    IoStats io;
    Trace trace;
    double seconds = 0;
  };

  ShardedWorkbench() = default;

  /// Runs `request` against shard `s` on the calling (pool) thread:
  /// private probe + signature engine, I/O charged to sub.io, trace bound
  /// for io_wait attribution. Mirrors BatchExecutor::RunOne minus the
  /// cache (the coordinator's L1 already ran).
  SubResult RunShardQuery(
      size_t s, const QueryRequest& request,
      const std::optional<std::chrono::steady_clock::time_point>& deadline)
      const;

  /// Folds successful sub-results into `resp`: union + dominance filter
  /// for skylines, k-way heap merge for top-k, summed counters/I-O/spans.
  void MergeSubResults(const QueryRequest& request,
                       std::vector<SubResult>* subs,
                       QueryResponse* resp) const;

  /// First failure among the live shards' sub-results, or OK.
  Status FirstFailure(const std::vector<SubResult>& subs) const;

  // pcube-lint: begin-lock-free(the global view is synchronized by
  // coord_mu_'s whole-execution protocol documented below: queries hold the
  // shared side for their entire run and pool workers read under the driver
  // thread's shared hold, which GUARDED_BY cannot express)
  Dataset data_;
  std::vector<std::unique_ptr<Workbench>> shards_;  ///< null == empty shard
  std::vector<std::vector<TupleId>> global_tids_;
  size_t live_shards_ = 0;
  DataEpoch epoch_;
  std::unique_ptr<ResultCache> result_cache_;
  std::unique_ptr<ThreadPool> pool_;

  // ---- Write path ---------------------------------------------------------
  /// Serialises coordinator writers: Apply-to-Apply ordering, and the
  /// invariant that global_tids_[s].size() equals shard s's staged row
  /// count (which predicts the local tids the next sub-batch receives).
  Mutex apply_mu_;
  /// Guards the global view (data_, global_tids_, tuple_homes_) against the
  /// brief exclusive window in which Apply extends it. Queries hold the
  /// shared side for their whole execution (like Workbench::struct_mu_);
  /// fields stay unannotated because pool workers read them under the
  /// driver thread's shared hold.
  mutable SharedMutex coord_mu_;
  /// tuple_homes_[global_tid] == (shard, local tid); grows with inserts.
  std::vector<std::pair<uint32_t, TupleId>> tuple_homes_;
  // pcube-lint: end-lock-free
};

}  // namespace pcube
