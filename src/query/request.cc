#include "query/request.h"

#include <cstdio>

namespace pcube {

std::string QueryLogRecord(const QueryRequest& request,
                           const QueryResponse& response) {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "{\"trace_id\":%llu,\"kind\":\"%s\",\"preds\":\"%s\",\"k\":%llu,"
      "\"plan\":\"%s\",\"degraded\":%s,\"seconds\":%.9g,\"results\":%llu,"
      "\"io_reads\":%llu,\"counters\":{\"heap_peak\":%llu,"
      "\"nodes_expanded\":%llu,\"pruned_boolean\":%llu,"
      "\"pruned_preference\":%llu,\"verified\":%llu,\"sig_seconds\":%.9g},"
      "\"spans\":",
      static_cast<unsigned long long>(response.trace_id()),
      request.kind == QueryRequest::Kind::kSkyline ? "skyline" : "topk",
      request.preds.ToString().c_str(),
      static_cast<unsigned long long>(
          request.kind == QueryRequest::Kind::kTopK ? request.k : 0),
      response.estimate.choice == PlanChoice::kSignature ? "signature"
                                                         : "boolean_first",
      response.degraded ? "true" : "false",
      response.seconds, static_cast<unsigned long long>(response.tids.size()),
      static_cast<unsigned long long>(response.io.TotalReads()),
      static_cast<unsigned long long>(response.counters.heap_peak),
      static_cast<unsigned long long>(response.counters.nodes_expanded),
      static_cast<unsigned long long>(response.counters.pruned_boolean),
      static_cast<unsigned long long>(response.counters.pruned_preference),
      static_cast<unsigned long long>(response.counters.verified),
      response.counters.sig_seconds);
  return std::string(buf) + response.trace.SpansJson() + "}";
}

}  // namespace pcube
