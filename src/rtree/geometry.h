// Axis-aligned rectangles over the preference dimensions. Coordinates are
// floats, matching the on-page entry layout (paper §V.A sizes signatures
// assuming ~20-byte R-tree entries).
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <span>
#include <string>

#include "common/logging.h"

namespace pcube {

/// Upper bound on preference dimensionality (the paper evaluates 2-5).
constexpr int kMaxDims = 8;

/// Axis-aligned box; a point is a box with min == max.
struct RectF {
  std::array<float, kMaxDims> min{};
  std::array<float, kMaxDims> max{};
  int dims = 0;

  static RectF Point(std::span<const float> coords) {
    PCUBE_DCHECK_LE(coords.size(), static_cast<size_t>(kMaxDims));
    RectF r;
    r.dims = static_cast<int>(coords.size());
    for (int d = 0; d < r.dims; ++d) {
      r.min[d] = coords[d];
      r.max[d] = coords[d];
    }
    return r;
  }

  /// An "empty" rect that acts as the identity for Expand.
  static RectF Empty(int dims) {
    RectF r;
    r.dims = dims;
    for (int d = 0; d < dims; ++d) {
      r.min[d] = std::numeric_limits<float>::max();
      r.max[d] = std::numeric_limits<float>::lowest();
    }
    return r;
  }

  bool IsEmpty() const { return dims == 0 || min[0] > max[0]; }

  void Expand(const RectF& o) {
    PCUBE_DCHECK_EQ(dims, o.dims);
    for (int d = 0; d < dims; ++d) {
      min[d] = std::min(min[d], o.min[d]);
      max[d] = std::max(max[d], o.max[d]);
    }
  }

  double Area() const {
    double a = 1.0;
    for (int d = 0; d < dims; ++d) a *= static_cast<double>(max[d]) - min[d];
    return a;
  }

  double Margin() const {
    double m = 0.0;
    for (int d = 0; d < dims; ++d) m += static_cast<double>(max[d]) - min[d];
    return m;
  }

  /// Area increase needed to absorb `o`.
  double Enlargement(const RectF& o) const {
    double after = 1.0;
    for (int d = 0; d < dims; ++d) {
      after *= static_cast<double>(std::max(max[d], o.max[d])) -
               std::min(min[d], o.min[d]);
    }
    return after - Area();
  }

  double OverlapArea(const RectF& o) const {
    double a = 1.0;
    for (int d = 0; d < dims; ++d) {
      double lo = std::max(min[d], o.min[d]);
      double hi = std::min(max[d], o.max[d]);
      if (hi <= lo) return 0.0;
      a *= hi - lo;
    }
    return a;
  }

  bool ContainsPoint(std::span<const float> p) const {
    for (int d = 0; d < dims; ++d) {
      if (p[d] < min[d] || p[d] > max[d]) return false;
    }
    return true;
  }

  bool Equals(const RectF& o) const {
    if (dims != o.dims) return false;
    for (int d = 0; d < dims; ++d) {
      if (min[d] != o.min[d] || max[d] != o.max[d]) return false;
    }
    return true;
  }

  /// Sum of the lower-corner coordinates: the BBS heap key for skylines
  /// (paper §V.A: d(n) = min over the region of sum of N_i).
  double MinCoordSum() const {
    double s = 0.0;
    for (int d = 0; d < dims; ++d) s += min[d];
    return s;
  }

  /// Squared distance between the centers of two rects (R* reinsertion order).
  double CenterDist2(const RectF& o) const {
    double s = 0.0;
    for (int d = 0; d < dims; ++d) {
      double c1 = 0.5 * (static_cast<double>(min[d]) + max[d]);
      double c2 = 0.5 * (static_cast<double>(o.min[d]) + o.max[d]);
      s += (c1 - c2) * (c1 - c2);
    }
    return s;
  }

  std::string ToString() const;
};

}  // namespace pcube
