// Positive fixtures for pcube-guarded-by-completeness: mutable members of
// a lock-owning class without GUARDED_BY or a lock-free pragma.
#include "lint_fixture_support.h"

#include <string>
#include <vector>

namespace pcube {

class LeakyCounters {
 public:
  void Bump();

 private:
  Mutex mu_;
  unsigned long total_ GUARDED_BY(mu_) = 0;
  unsigned long dropped_ = 0;  // expect-lint: pcube-guarded-by-completeness
  double ewma_ = 0;  // expect-lint: pcube-guarded-by-completeness
};

// SharedMutex owners are held to the same rule, including members declared
// before the mutex.
class LeakyRegistry {
 public:
  void Publish();

 private:
  std::vector<std::string> names_;  // expect-lint: pcube-guarded-by-completeness
  mutable SharedMutex mu_;
  std::vector<int> values_ GUARDED_BY(mu_);
};

// A nested lock-owning struct is checked independently of its owner.
class Outer {
 public:
  struct Stripe {
    Mutex mu;
    int hits GUARDED_BY(mu) = 0;
    int misses = 0;  // expect-lint: pcube-guarded-by-completeness
  };

 private:
  // The outer class owns no mutex directly, so its members are exempt.
  int capacity_ = 0;
};

}  // namespace pcube
