#include "cache/cached_execution.h"

#include "query/incremental.h"

namespace pcube {

Result<SkylineOutput> RunSkylineDrillDown(
    const RStarTree* tree, const PCube* cube, const QueryRequest& request,
    const SkylineOutput& prev, Trace* trace,
    const std::optional<std::chrono::steady_clock::time_point>& deadline) {
  auto probe = cube->MakeProbe(request.preds);
  if (!probe.ok()) return probe.status();
  SkylineEngine engine(tree, probe->get(), nullptr, request.skyline);
  engine.set_trace(trace);
  if (deadline) engine.set_deadline(*deadline);
  auto run = engine.RunFrom(DrillDownSeed(prev));
  if (!run.ok()) return run.status();
  // Carry the ancestor's b_list forward so this output can seed further
  // drill-downs itself (chained sessions, incremental.h).
  return MergeAfterDrillDown(std::move(*run), prev);
}

}  // namespace pcube
