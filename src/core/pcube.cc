#include "core/pcube.h"

#include <bit>
#include <map>

namespace pcube {

Result<PCube> PCube::Build(BufferPool* pool, const Dataset& data,
                           const RStarTree& tree, const PCubeOptions& options) {
  auto store = SignatureStore::Create(pool);
  if (!store.ok()) return store.status();
  PCube cube(std::make_unique<SignatureStore>(std::move(*store)),
             tree.fanout(), tree.height() + 1, options);
  cube.num_bool_dims_ = data.num_bool();
  if (options.build_bloom) cube.bloom_ = std::make_unique<BloomStore>(pool);

  auto paths = PathTable::Collect(tree);
  if (!paths.ok()) return paths.status();
  PCUBE_RETURN_NOT_OK(cube.BuildAllCuboids(data, *paths));
  return cube;
}

Status PCube::BuildAllCuboids(const Dataset& data, const PathTable& paths) {
  // Atomic cuboids (always materialised, paper §IV.B.2).
  for (int dim = 0; dim < data.num_bool(); ++dim) {
    std::vector<Signature> sigs = BuildAtomicCuboidSignatures(
        data, paths, dim, fanout_, levels_);
    for (uint32_t v = 0; v < sigs.size(); ++v) {
      CellId cell = AtomicCellId(dim, v);
      if (sigs[v].Empty()) {
        // On a rebuild a previously-populated cell may have emptied; storing
        // the empty signature tombstones its stale partials.
        auto has = store_->HasCell(cell);
        if (!has.ok()) return has.status();
        if (*has) PCUBE_RETURN_NOT_OK(store_->Put(cell, sigs[v]));
        continue;
      }
      PCUBE_RETURN_NOT_OK(store_->Put(cell, sigs[v]));
      if (bloom_ != nullptr) {
        PCUBE_RETURN_NOT_OK(
            bloom_->Put(cell, sigs[v], options_.bloom_bits_per_key));
      }
      ++num_cells_;
    }
  }

  // Optional composite cuboids up to materialize_max_dims.
  if (options_.materialize_max_dims >= 2) {
    for (CuboidMask mask :
         EnumerateCuboids(data.num_bool(), options_.materialize_max_dims)) {
      if (std::popcount(mask) < 2) continue;
      std::vector<int> dims;
      for (int d = 0; d < data.num_bool(); ++d) {
        if (mask & (CuboidMask{1} << d)) dims.push_back(d);
      }
      // Group tuples by their value combination on the cuboid's dimensions.
      std::map<std::vector<uint32_t>, Signature> cells;
      std::vector<uint32_t> key(dims.size());
      for (TupleId t = 0; t < data.num_tuples(); ++t) {
        if (!paths.contains(t)) continue;  // tombstoned: not in the tree
        for (size_t i = 0; i < dims.size(); ++i) {
          key[i] = data.BoolValue(t, dims[i]);
        }
        auto it = cells.find(key);
        if (it == cells.end()) {
          it = cells.emplace(key, Signature(fanout_, levels_)).first;
        }
        it->second.SetPath(paths.path(t));
      }
      for (const auto& [values, sig] : cells) {
        PredicateSet preds;
        for (size_t i = 0; i < dims.size(); ++i) {
          preds.Add({dims[i], values[i]});
        }
        CellId cell = registry_.Intern(preds);
        PCUBE_RETURN_NOT_OK(store_->Put(cell, sig));
        if (bloom_ != nullptr) {
          PCUBE_RETURN_NOT_OK(
              bloom_->Put(cell, sig, options_.bloom_bits_per_key));
        }
        ++num_cells_;
      }
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<BooleanProbe>> PCube::MakeProbe(
    const PredicateSet& preds) const {
  if (preds.empty()) return std::unique_ptr<BooleanProbe>(new TrueProbe());
  // Prefer an exactly materialised (possibly composite) cell.
  if (preds.size() >= 2 &&
      static_cast<int>(preds.size()) <= options_.materialize_max_dims) {
    CellId cell = registry_.Lookup(preds);
    if (cell != CellRegistry::kUnknownCell) {
      std::vector<SignatureCursor> cursors;
      cursors.emplace_back(store_.get(), cell, fanout_, levels_,
                           fragment_cache_);
      return std::unique_ptr<BooleanProbe>(
          new SignatureProbe(std::move(cursors)));
    }
  }
  // Otherwise one cursor per atomic predicate, ANDed lazily.
  std::vector<SignatureCursor> cursors;
  cursors.reserve(preds.size());
  for (const Predicate& p : preds.predicates()) {
    cursors.emplace_back(store_.get(), AtomicCellId(p.dim, p.value), fanout_,
                         levels_, fragment_cache_);
  }
  return std::unique_ptr<BooleanProbe>(new SignatureProbe(std::move(cursors)));
}

Result<std::unique_ptr<BooleanProbe>> PCube::MakeBloomProbe(
    const PredicateSet& preds) const {
  if (bloom_ == nullptr) {
    return Status::InvalidArgument("P-Cube built without bloom signatures");
  }
  if (preds.empty()) return std::unique_ptr<BooleanProbe>(new TrueProbe());
  std::vector<BloomFilter> filters;
  uint64_t pages = 0;
  for (const Predicate& p : preds.predicates()) {
    auto filter = bloom_->Load(AtomicCellId(p.dim, p.value), &pages);
    if (!filter.ok()) {
      if (filter.status().IsNotFound()) {
        // Cell is empty: probe that prunes everything (empty filter).
        BloomFilter empty(1);
        filters.clear();
        filters.push_back(std::move(empty));
        return std::unique_ptr<BooleanProbe>(
            new BloomProbe(std::move(filters), fanout_, pages));
      }
      return filter.status();
    }
    filters.push_back(std::move(*filter));
  }
  return std::unique_ptr<BooleanProbe>(
      new BloomProbe(std::move(filters), fanout_, pages));
}

std::vector<CellId> PCube::AffectedCells(const Dataset& data,
                                         TupleId tid) const {
  std::vector<CellId> cells;
  for (int d = 0; d < num_bool_dims_; ++d) {
    cells.push_back(AtomicCellId(d, data.BoolValue(tid, d)));
  }
  if (options_.materialize_max_dims >= 2) {
    for (CuboidMask mask :
         EnumerateCuboids(num_bool_dims_, options_.materialize_max_dims)) {
      if (std::popcount(mask) < 2) continue;
      PredicateSet preds;
      for (int d = 0; d < num_bool_dims_; ++d) {
        if (mask & (CuboidMask{1} << d)) preds.Add({d, data.BoolValue(tid, d)});
      }
      CellId cell = registry_.Lookup(preds);
      if (cell != CellRegistry::kUnknownCell) cells.push_back(cell);
    }
  }
  return cells;
}

Status PCube::ApplyChanges(const Dataset& data, const PathChangeSet& changes) {
  if (changes.root_split) {
    return Status::NotSupported(
        "batch contained a root split: every path changed, call Rebuild()");
  }
  // Group per-cell operations so each affected cell is rewritten once.
  struct CellOps {
    std::vector<Path> clears;
    std::vector<Path> sets;
  };
  std::map<CellId, CellOps> ops;
  for (const PathChange& c : changes.changes) {
    bool moved = c.has_old && c.has_new &&
                 !c.deleted && c.old_path != c.new_path;
    bool inserted = !c.has_old && c.has_new && !c.deleted;
    bool removed = c.deleted && c.has_old;
    if (!moved && !inserted && !removed) continue;  // no net effect
    for (CellId cell : AffectedCells(data, c.tid)) {
      CellOps& o = ops[cell];
      if (c.has_old && (moved || removed)) o.clears.push_back(c.old_path);
      if (c.has_new && (moved || inserted)) o.sets.push_back(c.new_path);
    }
  }
  Status status;
  for (auto& [cell, o] : ops) {
    auto sig = store_->LoadFull(cell, fanout_, levels_);
    if (!sig.ok()) {
      status = sig.status();
      break;
    }
    // Clears before sets: a move within one cell must not drop fresh bits.
    for (const Path& p : o.clears) sig->ClearPath(p);
    for (const Path& p : o.sets) sig->SetPath(p);
    status = store_->Put(cell, *sig);
    if (status.ok() && bloom_ != nullptr) {
      status = bloom_->Put(cell, *sig, options_.bloom_bits_per_key);
    }
    if (!status.ok()) break;
  }
  if (epoch_ != nullptr) {
    // Bump AFTER the writes (even failed ones — partially applied batches
    // must invalidate too): a concurrent fill that read its stamp before
    // this point can only look stale at lookup, never wrongly fresh. Even
    // an empty ops map bumps the global/structural epochs — the underlying
    // tree mutation may have reshaped nodes without moving any tuple.
    std::vector<CellId> bumped;
    bumped.reserve(ops.size());
    for (const auto& [cell, o] : ops) bumped.push_back(cell);
    epoch_->BumpCells(bumped);
  }
  return status;
}

Status PCube::Rebuild(const Dataset& data, const RStarTree& tree) {
  PCUBE_CHECK_EQ(tree.fanout(), fanout_);
  levels_ = tree.height() + 1;
  auto paths = PathTable::Collect(tree);
  if (!paths.ok()) return paths.status();
  num_cells_ = 0;
  Status s = BuildAllCuboids(data, *paths);
  // Unknown footprint (every signature rewritten): invalidate everything,
  // even on failure — a partial rebuild must not leave fresh-looking
  // entries behind.
  if (epoch_ != nullptr) epoch_->BumpAll();
  return s;
}

uint64_t PCube::MaterializedPages() const {
  uint64_t pages = store_->num_pages() + store_->index().num_pages();
  if (bloom_ != nullptr) pages += bloom_->num_pages();
  return pages;
}

}  // namespace pcube
