// On-page R-tree node layout. Entries live in fixed slots with a validity
// bitmap; deleting an entry leaves a hole that a later insert reuses (the
// paper's free-entry tracking, §IV.B.3), so slot positions — and therefore
// tuple paths — stay stable unless a node splits or re-inserts.
//
// Layout (page = 4096 B):
//   u8  is_leaf | u8 pad | u16 count | u16 level | u16 pad
//   valid bitmap: ceil(M/8) bytes
//   entries: M * (2*dims*4 rect bytes + 8 id bytes)
//
// `id` is a child PageId in internal nodes and a TupleId in leaves.
#pragma once

#include <cstdint>

#include "common/bit_util.h"
#include "rtree/geometry.h"
#include "rtree/path.h"
#include "storage/page.h"

namespace pcube {

/// Read/write view over a node page. Cheap to construct; does not own the
/// page.
class NodeView {
 public:
  static constexpr size_t kHeaderSize = 8;

  /// Maximum entries per node for `dims` preference dimensions: the largest
  /// M with kHeaderSize + ceil(M/8) + M * entry_size <= kPageSize.
  static uint32_t MaxEntries(int dims) {
    size_t esize = EntrySize(dims);
    uint32_t m = static_cast<uint32_t>((kPageSize - kHeaderSize) * 8 / (esize * 8 + 1));
    while (kHeaderSize + (m + 7) / 8 + m * esize > kPageSize) --m;
    return m;
  }

  static size_t EntrySize(int dims) { return 2 * dims * 4 + 8; }

  NodeView(Page* page, int dims)
      : page_(page), dims_(dims), m_(MaxEntries(dims)), esize_(EntrySize(dims)) {}

  /// Zeroes and initialises the header of a fresh node.
  void Init(bool is_leaf, uint16_t level) {
    page_->Zero();
    page_->bytes[0] = is_leaf ? 1 : 0;
    SetCount(0);
    bit_util::StoreLE<uint16_t>(page_->data() + 4, level);
  }

  bool is_leaf() const { return page_->bytes[0] == 1; }
  uint16_t count() const { return bit_util::LoadLE<uint16_t>(page_->data() + 2); }
  /// 0 for leaves, increasing toward the root.
  uint16_t level() const { return bit_util::LoadLE<uint16_t>(page_->data() + 4); }
  uint32_t max_entries() const { return m_; }
  int dims() const { return dims_; }

  /// Slots are 0-based internally; paper paths are 1-based (slot + 1).
  bool Valid(uint32_t slot) const {
    PCUBE_DCHECK_LT(slot, m_);
    return page_->bytes[kHeaderSize + slot / 8] >> (slot % 8) & 1;
  }

  RectF GetRect(uint32_t slot) const {
    RectF r;
    r.dims = dims_;
    const uint8_t* p = EntryPtr(slot);
    for (int d = 0; d < dims_; ++d) {
      r.min[d] = bit_util::LoadLE<float>(p + 4 * d);
      r.max[d] = bit_util::LoadLE<float>(p + 4 * (dims_ + d));
    }
    return r;
  }

  uint64_t GetId(uint32_t slot) const {
    return bit_util::LoadLE<uint64_t>(EntryPtr(slot) + 8 * dims_);
  }

  /// Writes entry data into `slot` and marks it valid (adjusting count).
  void SetEntry(uint32_t slot, const RectF& rect, uint64_t id) {
    PCUBE_DCHECK_EQ(rect.dims, dims_);
    uint8_t* p = MutableEntryPtr(slot);
    for (int d = 0; d < dims_; ++d) {
      bit_util::StoreLE<float>(p + 4 * d, rect.min[d]);
      bit_util::StoreLE<float>(p + 4 * (dims_ + d), rect.max[d]);
    }
    bit_util::StoreLE<uint64_t>(p + 8 * dims_, id);
    if (!Valid(slot)) {
      page_->bytes[kHeaderSize + slot / 8] |= uint8_t{1} << (slot % 8);
      SetCount(count() + 1);
    }
  }

  /// Marks `slot` free (the hole is reused by a later insert).
  void ClearEntry(uint32_t slot) {
    if (Valid(slot)) {
      page_->bytes[kHeaderSize + slot / 8] &=
          static_cast<uint8_t>(~(uint8_t{1} << (slot % 8)));
      SetCount(count() - 1);
    }
  }

  /// First free slot, or max_entries() when full.
  uint32_t FirstFreeSlot() const {
    for (uint32_t s = 0; s < m_; ++s) {
      if (!Valid(s)) return s;
    }
    return m_;
  }

  /// MBR of all valid entries (Empty if none).
  RectF Mbr() const {
    RectF r = RectF::Empty(dims_);
    for (uint32_t s = 0; s < m_; ++s) {
      if (Valid(s)) r.Expand(GetRect(s));
    }
    return r;
  }

 private:
  void SetCount(uint16_t c) { bit_util::StoreLE<uint16_t>(page_->data() + 2, c); }

  const uint8_t* EntryPtr(uint32_t slot) const {
    PCUBE_DCHECK_LT(slot, m_);
    return page_->data() + kHeaderSize + (m_ + 7) / 8 + slot * esize_;
  }
  uint8_t* MutableEntryPtr(uint32_t slot) {
    PCUBE_DCHECK_LT(slot, m_);
    return page_->data() + kHeaderSize + (m_ + 7) / 8 + slot * esize_;
  }

  Page* page_;
  int dims_;
  uint32_t m_;
  size_t esize_;
};

}  // namespace pcube
