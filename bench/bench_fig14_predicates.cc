// Figure 14: skyline execution time w.r.t. the number of boolean predicates
// (1-4) on the Forest CoverType dataset (here: the schema-matched surrogate,
// see DESIGN.md §5).
//
// With k > 1 predicates only atomic cuboids are materialised, so the
// signature method loads k one-dimensional signatures and ANDs them lazily.
//
// Paper's claims to reproduce: Signature and Boolean are insensitive to the
// number of predicates (Signature consistently better); Domination grows
// significantly because more candidates fail verification.
#include "bench_common.h"

namespace pcube::bench {
namespace {

Workbench* CoverTypeWorkbench() {
  return CachedWorkbench2("fig14", [] {
    CoverTypeConfig config;
    config.num_tuples = 58101 * Scale();  // 1/10 of the real row count per scale unit
    return GenerateCoverTypeSurrogate(config);
  });
}

void BM_CoverTypeSkyline(benchmark::State& state, const char* method) {
  int npreds = static_cast<int>(state.range(0));
  Workbench* wb = CoverTypeWorkbench();
  PredicateSet preds = CoverTypePredicates(npreds);
  MeasuredRun last;
  for (auto _ : state) {
    if (std::string(method) == "signature") {
      last = RunSignatureSkyline(wb, preds);
    } else if (std::string(method) == "domination") {
      last = RunDominationSkyline(wb, preds);
    } else {
      last = RunBooleanSkyline(wb, preds);
    }
    state.SetIterationTime(CostSeconds(last));
  }
  ReportRun(state, last);
}

void RegisterAll() {
  for (int npreds : {1, 2, 3, 4}) {
    for (const char* method : {"domination", "boolean", "signature"}) {
      benchmark::RegisterBenchmark(
          (std::string("fig14/CoverTypeSkyline/") + method).c_str(),
          BM_CoverTypeSkyline, method)
          ->Arg(npreds)
          ->Iterations(3)
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace pcube::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  pcube::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
