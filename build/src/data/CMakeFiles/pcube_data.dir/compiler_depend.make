# Empty compiler generated dependencies file for pcube_data.
# This may be replaced when dependencies are built.
