// Domination-first baseline (paper §VI.A, "Domination" for skylines /
// "Ranking" for top-k): BBS [9] / best-first search over the R-tree with no
// boolean pruning at all, combined with minimal probing [3] — each candidate
// result is boolean-verified by a random tuple access (the paper's DBool
// I/O) only at the moment it would be emitted, which minimises the number of
// verifications at the price of a larger candidate heap.
#pragma once

#include "query/skyline_engine.h"
#include "query/topk_engine.h"

namespace pcube {

/// BBS + minimal-probing skyline with boolean predicates.
Result<SkylineOutput> DominationFirstSkyline(const RStarTree& tree,
                                             const TableStore& table,
                                             const PredicateSet& preds,
                                             std::vector<int> pref_dims = {});

/// Best-first + minimal-probing top-k with boolean predicates.
Result<TopKOutput> RankingFirstTopK(const RStarTree& tree,
                                    const TableStore& table,
                                    const PredicateSet& preds,
                                    const RankingFunction& f, size_t k);

}  // namespace pcube
