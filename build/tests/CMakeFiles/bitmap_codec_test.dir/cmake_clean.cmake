file(REMOVE_RECURSE
  "CMakeFiles/bitmap_codec_test.dir/bitmap_codec_test.cc.o"
  "CMakeFiles/bitmap_codec_test.dir/bitmap_codec_test.cc.o.d"
  "bitmap_codec_test"
  "bitmap_codec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitmap_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
