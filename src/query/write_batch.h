// The mutation surface of the unified service interface (DESIGN.md §15):
// one WriteBatch carries a set of row inserts and tuple deletes that commit
// and become visible ATOMICALLY — either every row of the batch is durable
// and applied, or none is. Apply() enforces this by validating the whole
// batch (schema, value ranges AND delete tids, the latter against the
// staged-write cursors) before it is staged in the WAL or any structure is
// touched: a logically invalid batch is rejected wholly and leaves no
// trace. The one caveat is a storage fault (I/O error, injected or real)
// striking mid-apply: Apply() then returns that error and the batch's
// state is indeterminate — it remains in the WAL, a prefix of it may be
// applied in memory, and recovery may re-apply it after a restart.
// QueryService::Apply(WriteBatch) is the only
// public mutation entry point; the raw structure mutators (RStarTree::Insert,
// PCube::ApplyChanges, ...) are internal so the WAL + epoch-stamping
// contract cannot be bypassed.
//
// The binary encoding here is shared by the two places a batch crosses a
// trust or durability boundary: the WAL record payload (storage/wal.h) and
// the kWrite wire frame (server/protocol.h). Decoding therefore follows the
// same defensive discipline as the query wire codec — every count is capped,
// every float must be finite, trailing bytes are an error — because a WAL
// page can be torn by a crash and a wire frame can come from a hostile peer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "cube/relation.h"

namespace pcube {

/// Hard caps the batch decoder enforces (both WAL replay and the wire).
inline constexpr size_t kMaxBatchRows = 1u << 16;  ///< inserts + deletes
inline constexpr size_t kMaxBatchDims = 64;        ///< per attribute class

/// One atomic set of mutations against a QueryService.
struct WriteBatch {
  /// When Apply() returns to the caller.
  enum class Ack : uint8_t {
    /// Batch is durable AND the maintenance thread has applied it to every
    /// structure — the caller reads its own writes. The default.
    kApplied = 0,
    /// Batch is durable (WAL fsynced) but may not be queryable yet; the
    /// maintenance thread applies it shortly after. Highest ingest rate.
    kDurable = 1,
  };

  /// One row to insert, in schema order.
  struct Row {
    std::vector<uint32_t> bools;
    std::vector<float> prefs;
  };

  std::vector<Row> inserts;
  std::vector<TupleId> deletes;  ///< tids into the service's global Dataset
  Ack ack = Ack::kApplied;

  bool empty() const { return inserts.empty() && deletes.empty(); }
  size_t num_rows() const { return inserts.size() + deletes.size(); }
};

/// What Apply() acknowledged.
struct WriteResult {
  uint64_t lsn = 0;          ///< WAL sequence number of the batch
  TupleId first_tid = 0;     ///< tid of inserts[0]; rows get consecutive ids
  uint64_t epoch = 0;        ///< global data epoch at acknowledgement
  double commit_seconds = 0; ///< stage -> durable wall time
  uint32_t group_size = 1;   ///< writers coalesced into the batch's fsync
  bool durable = false;      ///< false for RAM-backed services (no WAL file)
};

/// Validates `batch` against `schema`: caps, dimension widths, value ranges
/// (bool values < cardinality), finite preference coordinates.
Status ValidateWriteBatch(const WriteBatch& batch, const Schema& schema);

/// Serializes a batch (caps enforced; an unrepresentable batch is
/// InvalidArgument, not truncation). The ack mode travels with the batch.
Result<std::string> EncodeWriteBatch(const WriteBatch& batch);

/// Decodes an encoded batch, trusting nothing: counts are capped, widths
/// must be consistent, floats finite, no trailing bytes. Schema-level
/// validation (cardinalities) is separate — call ValidateWriteBatch.
Status DecodeWriteBatch(const uint8_t* data, size_t size, WriteBatch* out);

}  // namespace pcube
