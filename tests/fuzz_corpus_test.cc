// Seeded randomized robustness corpus: decoders that consume on-disk bytes
// (bitmap codec, catalog) must return a typed error — or a correct success —
// on arbitrary truncations, bit flips and random garbage. Never a crash,
// never an out-of-bounds access (scripts/ci.sh runs this under ASan), never
// a multi-gigabyte allocation from a fuzzed length field.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "bitmap/codec.h"
#include "common/bit_util.h"
#include "common/random.h"
#include "storage/buffer_pool.h"
#include "storage/page_manager.h"
#include "workbench/catalog.h"

namespace pcube {
namespace {

// ------------------------------------------------------------ bitmap codec

TEST(FuzzCorpusTest, BitmapDecodeSurvivesRandomGarbage) {
  Random rng(1001);
  for (int trial = 0; trial < 2000; ++trial) {
    size_t len = rng.Uniform(64);
    std::vector<uint8_t> buf(len);
    for (uint8_t& b : buf) b = static_cast<uint8_t>(rng.Uniform(256));
    size_t offset = 0;
    BitVector decoded;
    Status st = BitmapCodec::Decode(buf.data(), buf.size(), &offset, &decoded);
    if (st.ok()) {
      EXPECT_LE(offset, buf.size());
    }
  }
}

TEST(FuzzCorpusTest, BitmapDecodeSurvivesTruncationOfValidEncodings) {
  Random rng(1002);
  for (int trial = 0; trial < 50; ++trial) {
    size_t n = 1 + rng.Uniform(400);
    BitVector bits(n);
    for (size_t i = 0; i < n; ++i) {
      if (rng.Uniform(4) == 0) bits.Set(i);
    }
    std::vector<uint8_t> buf;
    BitmapCodec::Encode(bits, &buf);
    for (size_t cut = 0; cut < buf.size(); ++cut) {
      size_t offset = 0;
      BitVector decoded;
      EXPECT_FALSE(
          BitmapCodec::Decode(buf.data(), cut, &offset, &decoded).ok());
    }
  }
}

TEST(FuzzCorpusTest, BitmapDecodeSurvivesBitFlipsOfValidEncodings) {
  Random rng(1003);
  for (int trial = 0; trial < 30; ++trial) {
    size_t n = 1 + rng.Uniform(300);
    BitVector bits(n);
    for (size_t i = 0; i < n; ++i) {
      if (rng.Uniform(3) == 0) bits.Set(i);
    }
    std::vector<uint8_t> clean;
    BitmapCodec::Encode(bits, &clean);
    for (size_t byte = 0; byte < clean.size(); ++byte) {
      std::vector<uint8_t> buf = clean;
      buf[byte] ^= static_cast<uint8_t>(1u << rng.Uniform(8));
      size_t offset = 0;
      BitVector decoded;
      // A flipped encoding may still parse (it is then a DIFFERENT valid
      // array — checksums, not the codec, own that detection); the codec's
      // contract is a typed status and in-bounds consumption.
      Status st =
          BitmapCodec::Decode(buf.data(), buf.size(), &offset, &decoded);
      if (st.ok()) {
        EXPECT_LE(offset, buf.size());
      }
    }
  }
}

// ---------------------------------------------------------------- catalog

/// A catalog exercising every section: schema, heap pages, indices, R-tree,
/// cube directory and dictionaries.
CatalogData SampleCatalog() {
  CatalogData c;
  c.num_bool = 2;
  c.num_pref = 2;
  c.bool_cardinality = {8, 16};
  c.num_tuples = 1000;
  c.table_pages = {3, 4, 5};
  c.indices.resize(2);
  c.indices[0].root = 6;
  c.indices[0].num_entries = 1000;
  c.indices[0].num_pages = 2;
  c.indices[1].root = 8;
  c.indices[1].num_entries = 1000;
  c.indices[1].num_pages = 2;
  c.rtree_root = 10;
  c.rtree_height = 1;
  c.rtree_fanout = 50;
  c.rtree_entries = 1000;
  c.rtree_pages = 21;
  c.has_cube = true;
  c.sig_index_root = 31;
  c.sig_index_entries = 24;
  c.sig_index_pages = 1;
  for (uint32_t i = 0; i < 24; ++i) c.sig_dense.emplace(CellId{i}, i);
  c.sig_num_partials = 24;
  c.sig_num_pages = 3;
  c.sig_append_page = 34;
  c.sig_append_offset = 100;
  c.cube_cells = 24;
  c.cube_levels = 2;
  c.dictionaries = {{"red", "green", "blue"}, {"a", "b"}};
  return c;
}

struct CatalogFixture {
  MemoryPageManager pm;
  IoStats stats;
  std::unique_ptr<BufferPool> pool;
  PageId root = kInvalidPageId;

  CatalogFixture() {
    pool = std::make_unique<BufferPool>(&pm, 64, &stats);
    auto handle = pool->New(IoCategory::kBtree, &root);
    PCUBE_CHECK(handle.ok());
    handle->get()->Zero();
  }
};

TEST(FuzzCorpusTest, CatalogRoundTripsClean) {
  CatalogFixture fx;
  ASSERT_TRUE(SaveCatalog(fx.pool.get(), fx.root, SampleCatalog()).ok());
  auto loaded = LoadCatalog(fx.pool.get(), fx.root);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_tuples, 1000u);
  EXPECT_EQ(loaded->table_pages.size(), 3u);
  EXPECT_EQ(loaded->sig_dense.size(), 24u);
  EXPECT_EQ(loaded->dictionaries.size(), 2u);
}

TEST(FuzzCorpusTest, CatalogLoadSurvivesSingleByteCorruption) {
  Random rng(1004);
  CatalogData sample = SampleCatalog();
  for (int trial = 0; trial < 400; ++trial) {
    CatalogFixture fx;
    ASSERT_TRUE(SaveCatalog(fx.pool.get(), fx.root, sample).ok());
    {
      auto handle = fx.pool->GetMutable(fx.root, IoCategory::kBtree);
      ASSERT_TRUE(handle.ok());
      size_t offset = rng.Uniform(kPageSize);
      handle->get()->data()[offset] ^= static_cast<uint8_t>(1 + rng.Uniform(255));
    }
    auto loaded = LoadCatalog(fx.pool.get(), fx.root);
    // Either the flip landed somewhere harmless (padding, an unread tail)
    // and the load succeeds, or it must fail typed — most corruptions hit
    // a count or length and must be caught by the remaining-bytes caps
    // before they can drive a huge resize.
    if (!loaded.ok()) {
      // Corruption for damaged fields; NotSupported when the flip lands in
      // the version word.
      EXPECT_TRUE(loaded.status().IsCorruption() ||
                  loaded.status().code() == StatusCode::kNotSupported)
          << loaded.status().ToString();
    }
  }
}

TEST(FuzzCorpusTest, CatalogLoadRejectsHugeClaimedCounts) {
  // Pin the worst case explicitly: a table-page count of 2^56 must fail
  // typed, not std::bad_alloc. The count field sits right after the header
  // (3 fixed u32s + per-dim u32s + one u64).
  CatalogData sample = SampleCatalog();
  CatalogFixture fx;
  ASSERT_TRUE(SaveCatalog(fx.pool.get(), fx.root, sample).ok());
  {
    auto handle = fx.pool->GetMutable(fx.root, IoCategory::kBtree);
    ASSERT_TRUE(handle.ok());
    // Page layout: u32 len | u64 next | payload. Payload: magic, version,
    // num_bool, num_pref, 2 cardinalities, u64 num_tuples, u64 table count.
    size_t count_offset = 12 + 4 * 6 + 8;
    handle->get()->data()[count_offset + 7] = 0xFF;  // top byte of the count
  }
  auto loaded = LoadCatalog(fx.pool.get(), fx.root);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status().ToString();
}

TEST(FuzzCorpusTest, CatalogLoadSurvivesTruncatedChain) {
  // Cut the page chain's payload length to every possible prefix; the
  // reader must fail typed on every cut that severs a field.
  CatalogData sample = SampleCatalog();
  for (uint32_t len : {0u, 1u, 4u, 8u, 16u, 40u, 100u, 200u}) {
    CatalogFixture fx;
    ASSERT_TRUE(SaveCatalog(fx.pool.get(), fx.root, sample).ok());
    {
      auto handle = fx.pool->GetMutable(fx.root, IoCategory::kBtree);
      ASSERT_TRUE(handle.ok());
      // Shrink the chunk length and cut the chain (no next page).
      bit_util::StoreLE<uint32_t>(handle->get()->data(), len);
      bit_util::StoreLE<uint64_t>(handle->get()->data() + 4, kInvalidPageId);
    }
    auto loaded = LoadCatalog(fx.pool.get(), fx.root);
    ASSERT_FALSE(loaded.ok()) << "len " << len;
    EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status().ToString();
  }
}

TEST(FuzzCorpusTest, CatalogLoadRejectsChainCycle) {
  CatalogFixture fx;
  ASSERT_TRUE(SaveCatalog(fx.pool.get(), fx.root, SampleCatalog()).ok());
  {
    auto handle = fx.pool->GetMutable(fx.root, IoCategory::kBtree);
    ASSERT_TRUE(handle.ok());
    bit_util::StoreLE<uint64_t>(handle->get()->data() + 4, fx.root);  // self
  }
  auto loaded = LoadCatalog(fx.pool.get(), fx.root);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status().ToString();
}

}  // namespace
}  // namespace pcube
