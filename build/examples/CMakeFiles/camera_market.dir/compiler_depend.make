# Empty compiler generated dependencies file for camera_market.
# This may be replaced when dependencies are built.
