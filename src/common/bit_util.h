// Small bit-twiddling helpers shared by the bitmap codecs and storage layer.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>

namespace pcube::bit_util {

/// Number of 64-bit words needed to hold `bits` bits.
constexpr size_t Words64(size_t bits) { return (bits + 63) / 64; }

/// Number of bytes needed to hold `bits` bits.
constexpr size_t Bytes(size_t bits) { return (bits + 7) / 8; }

constexpr bool GetBit(const uint64_t* words, size_t i) {
  return (words[i >> 6] >> (i & 63)) & 1;
}

constexpr void SetBit(uint64_t* words, size_t i) {
  words[i >> 6] |= uint64_t{1} << (i & 63);
}

constexpr void ClearBit(uint64_t* words, size_t i) {
  words[i >> 6] &= ~(uint64_t{1} << (i & 63));
}

inline int PopCount(uint64_t w) { return std::popcount(w); }

/// Ceil(a / b) for positive integers.
constexpr uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

/// Unaligned little-endian load/store, used by page serialisation.
template <typename T>
inline T LoadLE(const uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

template <typename T>
inline void StoreLE(uint8_t* p, T v) {
  std::memcpy(p, &v, sizeof(T));
}

}  // namespace pcube::bit_util
