// Positive fixtures for pcube-wire-no-abort: abort-family calls in
// wire-facing code (this directory stands in for src/server/ via the
// --wire-paths flag) must each be reported once.
#include "../lint_fixture_support.h"

#include <cassert>
#include <cstdlib>

namespace pcube::wire {

Status DecodeFrame(const unsigned char* bytes, unsigned long len) {
  PCUBE_CHECK(len >= 12);  // expect-lint: pcube-wire-no-abort
  PCUBE_CHECK_LE(len, 1u << 20);  // expect-lint: pcube-wire-no-abort
  PCUBE_DCHECK(bytes != nullptr);  // expect-lint: pcube-wire-no-abort
  assert(bytes[0] == 'P');  // expect-lint: pcube-wire-no-abort
  if (len == 0) {
    std::abort();  // expect-lint: pcube-wire-no-abort
  }
  return Status{};
}

}  // namespace pcube::wire
