file(REMOVE_RECURSE
  "libpcube_common.a"
)
