#include "cache/fragment_cache.h"

namespace pcube {

namespace {
size_t FragmentCharge(const std::vector<std::pair<Path, BitVector>>& nodes) {
  size_t c = 96;  // entry + control-block overhead
  for (const auto& [path, bits] : nodes) {
    c += 48 + path.capacity() * sizeof(Path::value_type) +
         bits.words().capacity() * sizeof(uint64_t);
  }
  return c;
}
}  // namespace

FragmentCache::FragmentCache(size_t capacity_bytes, const DataEpoch* epoch)
    : epoch_(epoch), shards_(new Shard[kShards]) {
  for (size_t i = 0; i < kShards; ++i) {
    shards_[i].slru.set_capacity(capacity_bytes / kShards);
  }
  auto& reg = MetricsRegistry::Default();
  hits_ = reg.GetCounter("pcube_fragment_cache_hits_total");
  misses_ = reg.GetCounter("pcube_fragment_cache_misses_total");
  stale_ = reg.GetCounter("pcube_fragment_cache_stale_total");
  evictions_ = reg.GetCounter("pcube_fragment_cache_evictions_total");
}

std::shared_ptr<const CachedFragment> FragmentCache::Lookup(CellId cell,
                                                            uint64_t sid) {
  Key key{cell, sid};
  Shard& shard = ShardOf(key);
  std::shared_ptr<const CachedFragment> value;
  {
    MutexLock lock(&shard.mu);
    if (!shard.slru.Lookup(key, &value)) {
      misses_->Increment();
      return nullptr;
    }
    if (value->epoch != epoch_->OfCell(cell)) {
      // Lazy invalidation: the cell changed since this decode was cached.
      size_t before = shard.slru.bytes();
      shard.slru.Erase(key);
      bytes_.fetch_sub(before - shard.slru.bytes(),
                       std::memory_order_relaxed);
      entries_.fetch_sub(1, std::memory_order_relaxed);
      stale_->Increment();
      return nullptr;
    }
  }
  hits_->Increment();
  return value;
}

void FragmentCache::Insert(CellId cell, uint64_t sid, bool present,
                           std::vector<std::pair<Path, BitVector>> nodes,
                           uint64_t epoch) {
  auto entry = std::make_shared<CachedFragment>();
  entry->present = present;
  entry->nodes = std::move(nodes);
  entry->epoch = epoch;
  entry->charge = FragmentCharge(entry->nodes);
  size_t charge = entry->charge;

  Key key{cell, sid};
  Shard& shard = ShardOf(key);
  MutexLock lock(&shard.mu);
  size_t bytes_before = shard.slru.bytes();
  size_t entries_before = shard.slru.entries();
  size_t evicted = shard.slru.Insert(key, std::move(entry), charge);
  if (evicted > 0) evictions_->Increment(evicted);
  bytes_.fetch_add(shard.slru.bytes() - bytes_before,
                   std::memory_order_relaxed);
  entries_.fetch_add(shard.slru.entries() - entries_before,
                     std::memory_order_relaxed);
}

}  // namespace pcube
