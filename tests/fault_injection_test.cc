// Robustness tests for the storage fault path: CRC-32 checksums catch
// injected corruption, the BufferPool's retry loop rides out transient read
// errors (and gives up with a typed IoError when they persist), the planner
// degrades signature plans to the boolean-first baseline on corruption
// without changing answers, and per-query deadlines produce Status::Timeout.
// Run under ASan by scripts/ci.sh.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/metrics.h"
#include "data/generators.h"
#include "storage/buffer_pool.h"
#include "storage/checksum.h"
#include "storage/fault_injection.h"
#include "workbench/planner.h"
#include "workbench/workbench.h"

namespace pcube {
namespace {

uint64_t CounterValue(const char* name) {
  return MetricsRegistry::Default().GetCounter(name)->Value();
}

TEST(ChecksumTest, Crc32KnownAnswer) {
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(ChecksumTest, CatchesCorruptionBelowTheLayer) {
  auto mem = std::make_unique<MemoryPageManager>();
  MemoryPageManager* raw = mem.get();
  ChecksumPageManager pm(std::move(mem));

  PageId pid = *pm.Allocate();
  Page page;
  page.Zero();
  page.data()[100] = 0xAB;
  ASSERT_TRUE(pm.Write(pid, page).ok());
  ASSERT_TRUE(pm.Read(pid, &page).ok());

  // Flip one byte behind the checksum layer's back, the way bit rot would.
  Page dirty;
  ASSERT_TRUE(raw->Read(pid, &dirty).ok());
  dirty.data()[100] ^= 0x01;
  ASSERT_TRUE(raw->Write(pid, dirty).ok());

  Status st = pm.Read(pid, &page);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_EQ(pm.checksum_failures(), 1u);

  // A rewrite through the layer re-records the checksum and heals the page.
  ASSERT_TRUE(pm.Write(pid, dirty).ok());
  EXPECT_TRUE(pm.Read(pid, &page).ok());
}

TEST(FaultPlanTest, ParseAndRoundTrip) {
  auto plan = FaultPlan::Parse(
      "seed=9,read_error=0.25,burst=3,bit_flip=0.5,short_read=0.125,"
      "torn_write=1");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->seed, 9u);
  EXPECT_DOUBLE_EQ(plan->read_error_rate, 0.25);
  EXPECT_EQ(plan->read_error_burst, 3u);
  EXPECT_DOUBLE_EQ(plan->bit_flip_rate, 0.5);
  EXPECT_DOUBLE_EQ(plan->short_read_rate, 0.125);
  EXPECT_DOUBLE_EQ(plan->torn_write_rate, 1.0);
  EXPECT_TRUE(plan->enabled());

  auto again = FaultPlan::Parse(plan->ToString());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->seed, plan->seed);
  EXPECT_DOUBLE_EQ(again->read_error_rate, plan->read_error_rate);
  EXPECT_EQ(again->read_error_burst, plan->read_error_burst);
  EXPECT_DOUBLE_EQ(again->bit_flip_rate, plan->bit_flip_rate);

  EXPECT_FALSE(FaultPlan::Parse("bogus=1").ok());
  EXPECT_FALSE(FaultPlan::Parse("read_error=1.5").ok());
  EXPECT_FALSE(FaultPlan::Parse("read_error=x").ok());
  EXPECT_FALSE(FaultPlan::Parse("seed").ok());
  auto empty = FaultPlan::Parse("");
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(empty->enabled());
}

std::vector<bool> ReadOutcomePattern(uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.read_error_rate = 0.3;
  plan.read_error_burst = 2;
  FaultInjectingPageManager pm(std::make_unique<MemoryPageManager>(), plan);
  for (int i = 0; i < 4; ++i) {
    auto pid = pm.Allocate();
    PCUBE_CHECK(pid.ok());
  }
  std::vector<bool> outcomes;
  Page page;
  for (PageId pid = 0; pid < 4; ++pid) {
    for (int i = 0; i < 20; ++i) outcomes.push_back(pm.Read(pid, &page).ok());
  }
  return outcomes;
}

TEST(FaultInjectionTest, SameSeedSameFaults) {
  std::vector<bool> a = ReadOutcomePattern(42);
  std::vector<bool> b = ReadOutcomePattern(42);
  std::vector<bool> c = ReadOutcomePattern(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // The plan actually did something, and not everything.
  EXPECT_NE(std::count(a.begin(), a.end(), false), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
}

TEST(FaultInjectionTest, DisarmedLayerPassesThrough) {
  FaultPlan plan;
  plan.read_error_rate = 1.0;
  FaultInjectingPageManager pm(std::make_unique<MemoryPageManager>(), plan);
  PageId pid = *pm.Allocate();
  Page page;
  pm.set_armed(false);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(pm.Read(pid, &page).ok());
  pm.set_armed(true);
  EXPECT_TRUE(pm.Read(pid, &page).IsIoError());
}

TEST(FaultInjectionTest, BufferPoolRetriesRideOutShortBurst) {
  FaultPlan plan;
  ScriptedFault fault;
  fault.pid = 0;
  fault.op = ScriptedFault::Op::kRead;
  fault.kind = ScriptedFault::Kind::kTransientError;
  fault.after = 0;
  fault.times = 2;  // fails twice, heals on the third attempt
  plan.script.push_back(fault);
  FaultInjectingPageManager pm(std::make_unique<MemoryPageManager>(), plan);
  ASSERT_TRUE(pm.Allocate().ok());

  IoStats stats;
  BufferPool pool(&pm, 16, &stats);
  uint64_t retries_before = CounterValue("pcube_io_retries_total");
  uint64_t giveups_before = CounterValue("pcube_io_giveups_total");
  auto handle = pool.Get(0, IoCategory::kHeapFile);
  EXPECT_TRUE(handle.ok()) << handle.status().ToString();
  EXPECT_EQ(pm.injected_read_errors(), 2u);
  EXPECT_GE(CounterValue("pcube_io_retries_total"), retries_before + 2);
  EXPECT_EQ(CounterValue("pcube_io_giveups_total"), giveups_before);
}

TEST(FaultInjectionTest, BufferPoolGivesUpOnPersistentErrors) {
  FaultPlan plan;
  ScriptedFault fault;
  fault.pid = 0;
  fault.kind = ScriptedFault::Kind::kTransientError;
  fault.times = ~0ull;  // never heals
  plan.script.push_back(fault);
  FaultInjectingPageManager pm(std::make_unique<MemoryPageManager>(), plan);
  ASSERT_TRUE(pm.Allocate().ok());

  IoStats stats;
  BufferPool pool(&pm, 16, &stats);
  uint64_t giveups_before = CounterValue("pcube_io_giveups_total");
  auto handle = pool.Get(0, IoCategory::kHeapFile);
  EXPECT_TRUE(handle.status().IsIoError()) << handle.status().ToString();
  EXPECT_GE(CounterValue("pcube_io_giveups_total"), giveups_before + 1);
}

TEST(FaultInjectionTest, BitFlipBecomesCorruptionThroughChecksums) {
  FaultPlan plan;
  ScriptedFault fault;
  fault.pid = 0;
  fault.kind = ScriptedFault::Kind::kBitFlip;
  fault.after = 0;
  fault.times = ~0ull;
  plan.script.push_back(fault);
  auto faults = std::make_unique<FaultInjectingPageManager>(
      std::make_unique<MemoryPageManager>(), plan);
  ChecksumPageManager pm(std::move(faults));

  PageId pid = *pm.Allocate();
  Page page;
  page.Zero();
  std::fill(page.data(), page.data() + kPageSize, uint8_t{0xAB});
  ASSERT_TRUE(pm.Write(pid, page).ok());
  Status st = pm.Read(pid, &page);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
}

TEST(FaultInjectionTest, TornWriteCaughtOnNextRead) {
  FaultPlan plan;
  ScriptedFault fault;
  fault.pid = 0;
  fault.op = ScriptedFault::Op::kWrite;
  fault.kind = ScriptedFault::Kind::kTornWrite;
  fault.times = ~0ull;
  plan.script.push_back(fault);
  auto faults = std::make_unique<FaultInjectingPageManager>(
      std::make_unique<MemoryPageManager>(), plan);
  FaultInjectingPageManager* raw_faults = faults.get();
  ChecksumPageManager pm(std::move(faults));

  PageId pid = *pm.Allocate();
  Page page;
  std::fill(page.data(), page.data() + kPageSize, uint8_t{0xAB});
  // The torn write itself reports success — crashes mid-pwrite are silent.
  ASSERT_TRUE(pm.Write(pid, page).ok());
  EXPECT_EQ(raw_faults->injected_torn_writes(), 1u);
  Status st = pm.Read(pid, &page);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
}

// ------------------------------------------------------------ query path

std::unique_ptr<Workbench> BuildBench(WorkbenchOptions options,
                                      uint64_t rows = 4000) {
  SyntheticConfig config;
  config.num_tuples = rows;
  config.num_bool = 3;
  config.num_pref = 2;
  config.bool_cardinality = 8;
  config.seed = 11;
  // These tests inject faults into PHYSICAL reads; both cache levels sit
  // above the page manager and would mask the damage (L2 keeps clean decoded
  // signature fragments across ColdStart, L1 keeps clean answers), turning
  // every assertion about degradation into a no-op. cache_test.cc covers the
  // cache/corruption interaction explicitly.
  options.result_cache_mb = 0;
  options.fragment_cache_mb = 0;
  auto wb = Workbench::Build(GenerateSynthetic(config), std::move(options));
  PCUBE_CHECK(wb.ok()) << wb.status().ToString();
  return std::move(*wb);
}

/// Flips one byte of every signature data page BELOW the checksum layer, so
/// the next physical read fails verification like real media rot.
void CorruptSignaturePages(Workbench* wb) {
  ASSERT_NE(wb->checksums(), nullptr);
  PageManager* below = wb->checksums()->inner();
  auto pages = wb->cube()->store().DataPages();
  ASSERT_TRUE(pages.ok()) << pages.status().ToString();
  ASSERT_FALSE(pages->empty());
  for (PageId pid : *pages) {
    Page page;
    ASSERT_TRUE(below->Read(pid, &page).ok());
    page.data()[17] ^= 0xFF;
    ASSERT_TRUE(below->Write(pid, page).ok());
  }
}

TEST(DegradationTest, PlannerFallsBackToBooleanOnSignatureCorruption) {
  auto wb = BuildBench({});
  QueryPlanner planner(wb.get());
  QueryRequest request = QueryRequest::Skyline(PredicateSet{{0, 3}}, {});
  request.hint = PlanHint::kSignature;

  auto clean = planner.Run(request);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_FALSE(clean->degraded);

  CorruptSignaturePages(wb.get());
  ASSERT_TRUE(wb->ColdStart().ok());  // drop the clean cached copies

  uint64_t degraded_before = CounterValue("pcube_queries_degraded_total");
  auto resp = planner.Run(request);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_TRUE(resp->degraded);
  EXPECT_FALSE(resp->degraded_reason.empty());
  EXPECT_EQ(resp->estimate.choice, PlanChoice::kBooleanFirst);
  EXPECT_EQ(resp->tids, clean->tids);  // same answer, different plan
  EXPECT_EQ(CounterValue("pcube_queries_degraded_total"), degraded_before + 1);
  EXPECT_GE(CounterValue("pcube_io_checksum_failures_total"), 1u);
}

TEST(DegradationTest, SkybandNeverDegradesToAWrongAnswer) {
  // The boolean-first baseline only answers plain skylines and top-k; a
  // k-skyband with a corrupt signature path must fail typed, not fall back.
  auto wb = BuildBench({});
  CorruptSignaturePages(wb.get());
  ASSERT_TRUE(wb->ColdStart().ok());

  SkylineQueryOptions band;
  band.skyband_k = 2;
  QueryRequest request = QueryRequest::Skyline(PredicateSet{{0, 3}}, band);
  request.hint = PlanHint::kSignature;
  QueryPlanner planner(wb.get());
  auto resp = planner.Run(request);
  ASSERT_FALSE(resp.ok());
  EXPECT_TRUE(resp.status().IsCorruption()) << resp.status().ToString();
}

TEST(DegradationTest, VerifyIntegrityFlagsCorruptSignaturePages) {
  auto wb = BuildBench({});
  auto clean_report = wb->VerifyIntegrity();
  ASSERT_TRUE(clean_report.ok()) << clean_report.status().ToString();
  for (const auto& [pid, msg] : clean_report->errors) {
    ADD_FAILURE() << "clean workbench: page " << pid << ": " << msg;
  }
  EXPECT_GT(clean_report->pages_checked, 0u);

  CorruptSignaturePages(wb.get());
  ASSERT_TRUE(wb->ColdStart().ok());
  auto report = wb->VerifyIntegrity();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->ok());
  EXPECT_GE(report->errors.size(), 1u);
}

TEST(DeadlineTest, SkylineTimesOutUnderSimulatedDiskLatency) {
  WorkbenchOptions options;
  options.read_latency_us = 300;  // every cold page read costs 300us
  auto wb = BuildBench(std::move(options));
  QueryRequest request = QueryRequest::Skyline(PredicateSet{}, {});
  request.hint = PlanHint::kSignature;
  request.deadline_ms = 1;
  QueryPlanner planner(wb.get());
  uint64_t timeouts_before = CounterValue("pcube_query_timeouts_total");
  auto resp = planner.Run(request);
  ASSERT_FALSE(resp.ok());
  EXPECT_TRUE(resp.status().IsTimeout()) << resp.status().ToString();
  EXPECT_GE(CounterValue("pcube_query_timeouts_total"), timeouts_before + 1);
}

// ------------------------------------------------------------ batch path

std::vector<BatchQuery> SmallWorkload() {
  std::vector<BatchQuery> queries;
  auto linear = std::make_shared<LinearRanking>(std::vector<double>{1.0, 2.0});
  for (uint32_t v = 0; v < 8; ++v) {
    queries.push_back(BatchQuery::Skyline(PredicateSet{{0, v}}));
    queries.push_back(BatchQuery::TopK(PredicateSet{{1, v}}, linear, 5));
  }
  return queries;
}

std::vector<TupleId> Sorted(std::vector<TupleId> tids) {
  std::sort(tids.begin(), tids.end());
  return tids;
}

TEST(FaultInjectionTest, BatchUnderTransientFaultsMatchesCleanReference) {
  auto clean = BuildBench({});
  // Scripted (not probabilistic) faults keep this deterministic: the first
  // two reads of every third page fail, the third heals — always within the
  // BufferPool's retry budget.
  WorkbenchOptions faulty_options;
  for (PageId pid = 0; pid < 600; pid += 3) {
    ScriptedFault fault;
    fault.pid = pid;
    fault.kind = ScriptedFault::Kind::kTransientError;
    fault.after = 0;
    fault.times = 2;
    faulty_options.fault_plan.script.push_back(fault);
  }
  auto faulty = BuildBench(std::move(faulty_options));

  std::vector<BatchQuery> queries = SmallWorkload();
  BatchOutput ref = clean->RunBatch(queries, 4);
  ASSERT_TRUE(faulty->ColdStart().ok());
  BatchOutput out = faulty->RunBatch(queries, 4);

  EXPECT_GT(faulty->faults()->injected_read_errors(), 0u);
  EXPECT_EQ(out.failed, 0u);  // every transient error healed by retry
  ASSERT_EQ(out.results.size(), ref.results.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(out.results[i].status.ok())
        << i << ": " << out.results[i].status.ToString();
    EXPECT_EQ(Sorted(out.results[i].response.tids),
              Sorted(ref.results[i].response.tids))
        << "query " << i;
  }
}

TEST(FaultInjectionTest, BatchUnderHeavyBitFlipsFailsTypedNeverSilently) {
  WorkbenchOptions options;
  options.fault_plan.seed = 6;
  options.fault_plan.bit_flip_rate = 0.5;
  auto wb = BuildBench(std::move(options));
  auto clean = BuildBench({});

  std::vector<BatchQuery> queries = SmallWorkload();
  BatchOutput ref = clean->RunBatch(queries, 4);
  ASSERT_TRUE(wb->ColdStart().ok());
  BatchOutput out = wb->RunBatch(queries, 4);

  EXPECT_GT(out.failed, 0u);
  ASSERT_EQ(out.results.size(), queries.size());
  for (size_t i = 0; i < out.results.size(); ++i) {
    const Status& st = out.results[i].status;
    if (st.ok()) {
      // A query that dodged every flip must still be exactly right.
      EXPECT_EQ(Sorted(out.results[i].response.tids),
                Sorted(ref.results[i].response.tids))
          << "query " << i;
    } else {
      EXPECT_TRUE(st.IsCorruption() || st.IsIoError()) << st.ToString();
    }
  }
}

TEST(DeadlineTest, BatchAccountsTimeouts) {
  WorkbenchOptions options;
  options.read_latency_us = 300;
  auto wb = BuildBench(std::move(options));
  std::vector<BatchQuery> queries;
  for (int i = 0; i < 4; ++i) {
    BatchQuery q = BatchQuery::Skyline(PredicateSet{});
    q.deadline_ms = 1;
    queries.push_back(std::move(q));
  }
  ASSERT_TRUE(wb->ColdStart().ok());
  BatchOutput out = wb->RunBatch(queries, 2);
  // Queries that arrive after siblings warmed the cache can finish in time;
  // at least the cache-cold ones must hit the deadline, and every failure
  // must be a typed Timeout.
  EXPECT_GT(out.timed_out, 0u);
  EXPECT_EQ(out.timed_out, out.failed);
  for (const auto& r : out.results) {
    EXPECT_TRUE(r.status.ok() || r.status.IsTimeout()) << r.status.ToString();
  }
}

}  // namespace
}  // namespace pcube
