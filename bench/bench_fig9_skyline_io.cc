// Figure 9: number of disk accesses w.r.t. T for skyline queries,
// decomposed as in the paper:
//   Domination: DBlock (R-tree block reads) + DBool (random tuple accesses
//               for boolean verification);
//   Signature:  SBlock (R-tree block reads) + SSig (partial-signature page
//               loads).
//
// Paper's claims to reproduce: SSig is a tiny fraction (<= 1%) of SBlock,
// and the signatures prune more than 1/3 of the R-tree blocks Domination
// reads, while eliminating random verification entirely.
#include "bench_common.h"

namespace pcube::bench {
namespace {

void BM_SkylineIo(benchmark::State& state) {
  uint64_t n = static_cast<uint64_t>(state.range(0));
  Workbench* wb = CachedWorkbench2("fig9/" + std::to_string(n), [n] {
    return GenerateSynthetic(PaperConfig(n));
  });
  PredicateSet preds = OnePredicate(100);
  MeasuredRun dom, sig;
  for (auto _ : state) {
    dom = RunDominationSkyline(wb, preds);
    sig = RunSignatureSkyline(wb, preds);
  }
  state.counters["DBlock"] =
      static_cast<double>(dom.io.ReadCount(IoCategory::kRtreeBlock));
  state.counters["DBool"] =
      static_cast<double>(dom.io.ReadCount(IoCategory::kBooleanVerify));
  state.counters["SBlock"] =
      static_cast<double>(sig.io.ReadCount(IoCategory::kRtreeBlock));
  state.counters["SSig"] =
      static_cast<double>(sig.io.ReadCount(IoCategory::kSignature));
}

void RegisterAll() {
  for (uint64_t n : TupleSweep()) {
    benchmark::RegisterBenchmark("fig9/SkylineDiskAccess", BM_SkylineIo)
        ->Arg(static_cast<int64_t>(n))
        ->Iterations(1);
  }
}

}  // namespace
}  // namespace pcube::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  pcube::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
