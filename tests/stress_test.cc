// Randomized end-to-end stress: for each seed, draw a random configuration
// (dimensionalities, cardinalities, distribution, fanout), build the full
// stack, fire a mixed battery of queries (skyline, dynamic skyline, skyband,
// top-k with several ranking functions, multi-predicate, dimension subsets)
// against naive oracles, then mutate the data (insert + delete batches with
// incremental maintenance) and verify everything again.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "data/generators.h"
#include "query/reference.h"
#include "workbench/workbench.h"

namespace pcube {
namespace {

std::vector<TupleId> SkylineTids(const SkylineOutput& out) {
  std::vector<TupleId> tids;
  for (const SearchEntry& e : out.skyline) tids.push_back(e.id);
  std::sort(tids.begin(), tids.end());
  return tids;
}

class StressTest : public ::testing::TestWithParam<int> {};

TEST_P(StressTest, RandomPipeline) {
  Random rng(5000 + GetParam());

  SyntheticConfig config;
  config.num_tuples = 800 + rng.Uniform(2000);
  config.num_bool = 1 + static_cast<int>(rng.Uniform(3));
  config.num_pref = 2 + static_cast<int>(rng.Uniform(3));
  config.bool_cardinality = 2 + static_cast<uint32_t>(rng.Uniform(6));
  config.dist = static_cast<PrefDistribution>(rng.Uniform(3));
  config.seed = 6000 + GetParam();

  WorkbenchOptions options;
  options.rtree.max_entries = 6 + static_cast<uint32_t>(rng.Uniform(20));
  options.rtree_by_insertion = rng.Uniform(2) == 0;
  auto wb_result = Workbench::Build(GenerateSynthetic(config), options);
  ASSERT_TRUE(wb_result.ok());
  Workbench& w = **wb_result;

  std::vector<bool> alive(w.data().num_tuples(), true);

  // Local oracles honouring the alive set (deleted tuples leave the tree
  // but keep their Dataset rows).
  auto matches = [&](const PredicateSet& preds, TupleId t) {
    return t < alive.size() && alive[t] && preds.Matches(w.data(), t);
  };
  auto oracle_skyband = [&](const PredicateSet& preds,
                            const std::vector<float>& origin, size_t k) {
    auto coord = [&](TupleId t, int d) -> double {
      double v = w.data().PrefValue(t, d);
      return origin.empty() ? v : std::abs(v - origin[d]);
    };
    std::vector<TupleId> cand;
    for (TupleId t = 0; t < w.data().num_tuples(); ++t) {
      if (matches(preds, t)) cand.push_back(t);
    }
    std::vector<TupleId> out;
    for (TupleId t : cand) {
      size_t dom = 0;
      for (TupleId s : cand) {
        if (s == t) continue;
        bool all_le = true, one_lt = false;
        for (int d = 0; d < w.data().num_pref(); ++d) {
          double sv = coord(s, d), tv = coord(t, d);
          if (sv > tv) { all_le = false; break; }
          if (sv < tv) one_lt = true;
        }
        if (all_le && one_lt && ++dom >= k) break;
      }
      if (dom < k) out.push_back(t);
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  auto oracle_topk = [&](const PredicateSet& preds, const RankingFunction& f,
                         size_t k) {
    std::vector<std::pair<double, TupleId>> scored;
    for (TupleId t = 0; t < w.data().num_tuples(); ++t) {
      if (matches(preds, t)) {
        scored.emplace_back(f.Score(w.data().PrefPoint(t)), t);
      }
    }
    std::sort(scored.begin(), scored.end());
    if (scored.size() > k) scored.resize(k);
    return scored;
  };

  auto random_preds = [&]() {
    PredicateSet preds;
    int n = static_cast<int>(rng.Uniform(config.num_bool + 1));
    for (int i = 0; i < n; ++i) {
      preds.Add({static_cast<int>(rng.Uniform(config.num_bool)),
                 static_cast<uint32_t>(rng.Uniform(config.bool_cardinality))});
    }
    return preds;
  };

  auto verify_battery = [&](const char* phase) {
    SCOPED_TRACE(phase);
    for (int q = 0; q < 6; ++q) {
      PredicateSet preds = random_preds();
      // Plain skyline.
      {
        auto out = w.SignatureSkyline(preds);
        ASSERT_TRUE(out.ok());
        EXPECT_EQ(SkylineTids(*out), oracle_skyband(preds, {}, 1))
            << preds.ToString();
      }
      // Skyband / dynamic skyline via engine options.
      {
        SkylineQueryOptions sopt;
        if (rng.Uniform(2) == 0) {
          for (int d = 0; d < config.num_pref; ++d) {
            sopt.origin.push_back(static_cast<float>(rng.NextDouble()));
          }
        }
        sopt.skyband_k = 1 + rng.Uniform(3);
        auto probe = w.cube()->MakeProbe(preds);
        ASSERT_TRUE(probe.ok());
        SkylineEngine engine(w.tree(), probe->get(), nullptr, sopt);
        auto out = engine.Run();
        ASSERT_TRUE(out.ok());
        EXPECT_EQ(SkylineTids(*out),
                  oracle_skyband(preds, sopt.origin, sopt.skyband_k))
            << preds.ToString();
      }
      // Top-k with a random ranking function family.
      {
        size_t k = 1 + rng.Uniform(30);
        std::unique_ptr<RankingFunction> f;
        std::vector<double> weights, target;
        for (int d = 0; d < config.num_pref; ++d) {
          weights.push_back(0.05 + rng.NextDouble());
          target.push_back(rng.NextDouble());
        }
        switch (rng.Uniform(3)) {
          case 0:
            f = std::make_unique<LinearRanking>(weights);
            break;
          case 1:
            f = std::make_unique<WeightedL2Ranking>(target, weights);
            break;
          default:
            f = std::make_unique<MinkowskiRanking>(target, weights, 3.0);
        }
        auto out = w.SignatureTopK(preds, *f, k);
        ASSERT_TRUE(out.ok());
        auto naive = oracle_topk(preds, *f, k);
        ASSERT_EQ(out->results.size(), naive.size()) << preds.ToString();
        for (size_t i = 0; i < naive.size(); ++i) {
          EXPECT_NEAR(out->results[i].key, naive[i].first, 1e-6)
              << preds.ToString() << " rank " << i;
        }
      }
    }
  };

  verify_battery("fresh build");

  // Mutation round: a batch of inserts and deletes, incrementally
  // maintained, then the whole battery again (the oracles honour `alive`).
  SyntheticConfig extra_config = config;
  extra_config.num_tuples = 150;
  extra_config.seed = 7000 + GetParam();
  Dataset extra = GenerateSynthetic(extra_config);
  WriteBatch batch;
  for (TupleId i = 0; i < extra.num_tuples(); ++i) {
    auto bools = extra.BoolRow(i);
    auto prefs = extra.PrefPoint(i);
    batch.inserts.push_back({{bools.begin(), bools.end()},
                             {prefs.begin(), prefs.end()}});
  }
  alive.resize(alive.size() + extra.num_tuples(), true);
  for (int i = 0; i < 60; ++i) {
    TupleId victim = rng.Uniform(config.num_tuples);
    if (!alive[victim]) continue;
    batch.deletes.push_back(victim);
    alive[victim] = false;
  }
  auto applied = w.Apply(batch);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  verify_battery("after maintenance");
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace pcube
