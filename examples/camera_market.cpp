// Example 2 of the paper: multi-dimensional skyline comparison on a digital
// camera database with schema (brand, type, price, resolution, optical zoom).
//
// A market analyst first asks for the skyline of professional Canon cameras,
// then ROLLS UP on the brand dimension to see the skyline of professional
// cameras from every maker — and compares the two to judge Canon's position
// in the professional market. The roll-up is answered incrementally from the
// first query's cached lists (Lemma 2) instead of searching from scratch.
//
//   ./camera_market [num_cameras]
#include <cstdio>
#include <cstdlib>

#include "common/random.h"
#include "query/incremental.h"
#include "workbench/workbench.h"

using namespace pcube;

namespace {

constexpr int kBrand = 0;  // 12 brands; 0 = "canon"
constexpr int kType = 1;   // 0 = professional, 1 = enthusiast, 2 = compact
const char* kBrands[] = {"canon",   "nikon", "sony",    "fuji",
                         "olympus", "pentax", "leica",  "panasonic",
                         "kodak",   "casio",  "samsung", "ricoh"};

// Preference dimensions (all "smaller is better" after normalisation):
//   0: price; 1: 1/resolution; 2: 1/optical-zoom.
Dataset MakeCatalog(uint64_t n) {
  Schema schema;
  schema.num_bool = 2;
  schema.num_pref = 3;
  schema.bool_cardinality = {12, 3};
  Dataset data(schema, n);
  Random rng(1976);
  for (TupleId t = 0; t < n; ++t) {
    uint32_t brand = static_cast<uint32_t>(rng.Uniform(12));
    uint32_t type = static_cast<uint32_t>(rng.Uniform(3));
    data.SetBoolValue(t, kBrand, brand);
    data.SetBoolValue(t, kType, type);
    // Professionals cost more but resolve/zoom better; brands differ in
    // quality (brand 0, "canon", builds the best glass in this market).
    double tier = type == 0 ? 0.25 : (type == 1 ? 0.5 : 0.75);
    double brand_quality = 0.015 * brand;
    auto jitter = [&] { return 0.18 * rng.NextGaussian(); };
    data.SetPrefValue(
        t, 0, static_cast<float>(std::clamp(1.05 - tier + jitter(), 0.0, 1.0)));
    data.SetPrefValue(
        t, 1,
        static_cast<float>(std::clamp(tier + brand_quality + jitter(), 0.0, 1.0)));
    data.SetPrefValue(
        t, 2,
        static_cast<float>(std::clamp(tier + brand_quality / 2 + jitter(), 0.0, 1.0)));
  }
  return data;
}

void PrintSkyline(const char* label, const SkylineOutput& out,
                  const Dataset& data) {
  std::printf("%s: %zu skyline cameras", label, out.skyline.size());
  size_t shown = 0;
  for (const SearchEntry& e : out.skyline) {
    if (shown++ == 6) {
      std::printf(" ...");
      break;
    }
    std::printf(" #%llu(%s)", static_cast<unsigned long long>(e.id),
                kBrands[data.BoolValue(e.id, kBrand)]);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100000;
  std::printf("camera catalog: %llu cameras (brand, type | price, "
              "1/resolution, 1/zoom)\n\n",
              static_cast<unsigned long long>(n));
  auto wb = Workbench::Build(MakeCatalog(n), WorkbenchOptions{});
  PCUBE_CHECK(wb.ok());
  Workbench& w = **wb;

  // Query 1: skyline of professional Canon cameras.
  PredicateSet canon_pro{{kBrand, 0}, {kType, 0}};
  auto probe1 = w.cube()->MakeProbe(canon_pro);
  PCUBE_CHECK(probe1.ok());
  SkylineEngine engine1(w.tree(), probe1->get(), nullptr);
  PCUBE_CHECK_OK(w.ColdStart());
  auto canon = engine1.Run();
  PCUBE_CHECK(canon.ok());
  PrintSkyline("professional canon skyline", *canon, w.data());
  uint64_t fresh_nodes = canon->counters.nodes_expanded;

  // Query 2: roll up on brand -> skyline of ALL professional cameras,
  // seeded per Lemma 2 with result + b_list of the previous query.
  PredicateSet all_pro{{kType, 0}};
  auto probe2 = w.cube()->MakeProbe(all_pro);
  PCUBE_CHECK(probe2.ok());
  SkylineEngine engine2(w.tree(), probe2->get(), nullptr);
  auto seed = RollUpSeed(*canon);
  auto pro = engine2.RunFrom(seed);
  PCUBE_CHECK(pro.ok());
  PrintSkyline("all-brand professional skyline (roll-up)", *pro, w.data());
  std::printf("  roll-up expanded %llu nodes (first query: %llu)\n\n",
              static_cast<unsigned long long>(pro->counters.nodes_expanded),
              static_cast<unsigned long long>(fresh_nodes));

  // The analyst's comparison: which Canon skyline cameras survive against
  // the whole professional market?
  size_t survivors = 0;
  for (const SearchEntry& e : pro->skyline) {
    if (w.data().BoolValue(e.id, kBrand) == 0) ++survivors;
  }
  std::printf("market position: %zu of %zu professional-skyline cameras are "
              "canon;\n%zu of canon's own %zu skyline models stay "
              "market-wide skylines.\n",
              survivors, pro->skyline.size(), survivors,
              canon->skyline.size());
  return 0;
}
