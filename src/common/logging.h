// CHECK/DCHECK assertion macros with streamed messages, RocksDB/Arrow style.
// PCUBE_CHECK is always on (invariants whose violation would corrupt data);
// PCUBE_DCHECK compiles out in NDEBUG builds.
#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace pcube::internal {

/// Accumulates a streamed failure message and aborts on destruction.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* expr) {
    stream_ << "[" << file << ":" << line << "] check failed: " << expr << " ";
  }
  [[noreturn]] ~FatalLogMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Converts the streamed expression to void so the ternary in PCUBE_CHECK
/// type-checks (glog's voidify trick; & binds looser than <<).
class Voidify {
 public:
  void operator&(std::ostream&) {}
};

/// Swallows the streamed message when a check is compiled out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace pcube::internal

#define PCUBE_CHECK(cond)                                        \
  (cond) ? (void)0                                               \
         : ::pcube::internal::Voidify() &                        \
               ::pcube::internal::FatalLogMessage(__FILE__, __LINE__, #cond) \
                   .stream()

#define PCUBE_CHECK_BINOP(a, b, op)                                        \
  PCUBE_CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "

#define PCUBE_CHECK_EQ(a, b) PCUBE_CHECK_BINOP(a, b, ==)
#define PCUBE_CHECK_NE(a, b) PCUBE_CHECK_BINOP(a, b, !=)
#define PCUBE_CHECK_LT(a, b) PCUBE_CHECK_BINOP(a, b, <)
#define PCUBE_CHECK_LE(a, b) PCUBE_CHECK_BINOP(a, b, <=)
#define PCUBE_CHECK_GT(a, b) PCUBE_CHECK_BINOP(a, b, >)
#define PCUBE_CHECK_GE(a, b) PCUBE_CHECK_BINOP(a, b, >=)

#ifdef NDEBUG
// The condition stays in the token stream (unevaluated) so variables used
// only in DCHECKs do not trigger -Wunused warnings.
#define PCUBE_DCHECK(cond) \
  while (false && (cond)) ::pcube::internal::NullStream()
#define PCUBE_DCHECK_EQ(a, b) PCUBE_DCHECK((a) == (b))
#define PCUBE_DCHECK_NE(a, b) PCUBE_DCHECK((a) != (b))
#define PCUBE_DCHECK_LT(a, b) PCUBE_DCHECK((a) < (b))
#define PCUBE_DCHECK_LE(a, b) PCUBE_DCHECK((a) <= (b))
#define PCUBE_DCHECK_GT(a, b) PCUBE_DCHECK((a) > (b))
#define PCUBE_DCHECK_GE(a, b) PCUBE_DCHECK((a) >= (b))
#else
#define PCUBE_DCHECK(cond) PCUBE_CHECK(cond)
#define PCUBE_DCHECK_EQ(a, b) PCUBE_CHECK_EQ(a, b)
#define PCUBE_DCHECK_NE(a, b) PCUBE_CHECK_NE(a, b)
#define PCUBE_DCHECK_LT(a, b) PCUBE_CHECK_LT(a, b)
#define PCUBE_DCHECK_LE(a, b) PCUBE_CHECK_LE(a, b)
#define PCUBE_DCHECK_GT(a, b) PCUBE_CHECK_GT(a, b)
#define PCUBE_DCHECK_GE(a, b) PCUBE_CHECK_GE(a, b)
#endif
