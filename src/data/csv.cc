#include "data/csv.h"

#include <fstream>
#include <map>
#include <sstream>

namespace pcube {

namespace {

/// Splits one CSV line on commas; supports double-quoted fields with ""
/// escapes. No multi-line fields.
std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c != '\r') {
      field.push_back(c);
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

}  // namespace

Result<CsvTable> ReadCsv(std::istream& in, const std::string& spec,
                         bool has_header) {
  std::vector<int> bool_cols, pref_cols;
  for (size_t i = 0; i < spec.size(); ++i) {
    switch (spec[i]) {
      case 'b':
        bool_cols.push_back(static_cast<int>(i));
        break;
      case 'p':
        pref_cols.push_back(static_cast<int>(i));
        break;
      case '-':
        break;
      default:
        return Status::InvalidArgument(
            std::string("bad column spec character '") + spec[i] + "'");
    }
  }
  if (pref_cols.empty()) {
    return Status::InvalidArgument("spec needs at least one 'p' column");
  }

  CsvTable table;
  table.dictionaries.resize(bool_cols.size());
  std::vector<std::map<std::string, uint32_t>> codes(bool_cols.size());

  std::string line;
  bool first = true;
  std::vector<std::vector<uint32_t>> bool_rows;
  std::vector<std::vector<float>> pref_rows;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::vector<std::string> fields = SplitCsvLine(line);
    if (fields.size() < spec.size()) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": expected >= " +
                                     std::to_string(spec.size()) + " columns");
    }
    if (first && has_header) {
      for (int c : bool_cols) table.bool_names.push_back(fields[c]);
      for (int c : pref_cols) table.pref_names.push_back(fields[c]);
      first = false;
      continue;
    }
    first = false;
    std::vector<uint32_t> brow;
    for (size_t d = 0; d < bool_cols.size(); ++d) {
      const std::string& v = fields[bool_cols[d]];
      auto [it, inserted] =
          codes[d].emplace(v, static_cast<uint32_t>(codes[d].size()));
      if (inserted) table.dictionaries[d].push_back(v);
      brow.push_back(it->second);
    }
    std::vector<float> prow;
    for (int c : pref_cols) {
      try {
        size_t consumed = 0;
        float value = std::stof(fields[c], &consumed);
        if (consumed != fields[c].size()) throw std::invalid_argument("junk");
        prow.push_back(value);
      } catch (const std::exception&) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": non-numeric preference value '" +
                                       fields[c] + "'");
      }
    }
    bool_rows.push_back(std::move(brow));
    pref_rows.push_back(std::move(prow));
  }

  Schema schema;
  schema.num_bool = static_cast<int>(bool_cols.size());
  schema.num_pref = static_cast<int>(pref_cols.size());
  for (const auto& dict : table.dictionaries) {
    schema.bool_cardinality.push_back(
        std::max<uint32_t>(1, static_cast<uint32_t>(dict.size())));
  }
  table.data = Dataset(schema, 0);
  for (size_t i = 0; i < bool_rows.size(); ++i) {
    table.data.Append(bool_rows[i], pref_rows[i]);
  }
  return table;
}

Result<CsvTable> ReadCsvFile(const std::string& path, const std::string& spec,
                             bool has_header) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IoError("cannot open " + path);
  return ReadCsv(in, spec, has_header);
}

}  // namespace pcube
