#include "query/skyline_engine.h"

#include <limits>
#include <queue>

#include "common/timer.h"
#include "rtree/node.h"

namespace pcube {

namespace {
struct KeyGreater {
  bool operator()(const SearchEntry& a, const SearchEntry& b) const {
    return a.key > b.key;
  }
};
using CandidateHeap =
    std::priority_queue<SearchEntry, std::vector<SearchEntry>, KeyGreater>;
}  // namespace

SkylineEngine::SkylineEngine(const RStarTree* tree, BooleanProbe* probe,
                             const TupleVerifier* verifier,
                             SkylineQueryOptions options)
    : tree_(tree), probe_(probe), verifier_(verifier),
      options_(std::move(options)) {
  if (options_.pref_dims.empty()) {
    for (int d = 0; d < tree_->dims(); ++d) dims_.push_back(d);
  } else {
    dims_ = options_.pref_dims;
  }
  PCUBE_CHECK_GE(options_.skyband_k, size_t{1});
  PCUBE_CHECK(options_.origin.empty() ||
              options_.origin.size() == static_cast<size_t>(tree_->dims()))
      << "dynamic-skyline origin needs one coordinate per tree dimension";
  window_.Reset(dims_.size());
  cand_scratch_.resize(dims_.size());
}

double SkylineEngine::LowCoord(const RectF& rect, int d) const {
  if (options_.origin.empty()) return rect.min[d];
  // Dynamic skyline: least |x - origin_d| for x in [min, max].
  double q = options_.origin[d];
  if (q < rect.min[d]) return rect.min[d] - q;
  if (q > rect.max[d]) return q - rect.max[d];
  return 0.0;
}

double SkylineEngine::EntryKey(const RectF& rect) const {
  double s = 0;
  for (int d : dims_) s += LowCoord(rect, d);
  return s;
}

void SkylineEngine::TransformInto(const RectF& rect) const {
  for (size_t i = 0; i < dims_.size(); ++i) {
    cand_scratch_[i] = LowCoord(rect, dims_[i]);
  }
}

bool SkylineEngine::Dominated(const RectF& rect) const {
  // One batched pass over the SoA window (4 members per AVX2 step),
  // saturating at skyband_k dominators — the same count the scalar
  // member-at-a-time loop produced.
  TransformInto(rect);
  return window_.CountDominators(cand_scratch_.data(), options_.skyband_k) >=
         options_.skyband_k;
}

Result<bool> SkylineEngine::Prune(const SearchEntry& e) {
  // Preference (domination) pruning first, boolean pruning second — the
  // order of the paper's prune() procedure, which determines which list an
  // entry doubly-pruned entry lands in.
  if (Dominated(e.rect)) {
    out_.d_list.push_back(e);
    ++out_.counters.pruned_preference;
    return true;
  }
  if (!e.path.empty()) {
    Timer t;
    auto pass = e.is_data ? probe_->TestData(e.path, e.id)
                           : probe_->Test(e.path);
    double dt = t.ElapsedSeconds();
    out_.counters.sig_seconds += dt;
    if (trace_ != nullptr) trace_->Record("signature_probe", dt);
    if (!pass.ok()) return pass.status();
    if (!*pass) {
      out_.b_list.push_back(e);
      ++out_.counters.pruned_boolean;
      return true;
    }
  }
  return false;
}

Result<SkylineOutput> SkylineEngine::Run() {
  SearchEntry root;
  root.key = -std::numeric_limits<double>::infinity();
  root.is_data = false;
  root.id = tree_->root();
  root.rect = RectF::Empty(tree_->dims());
  return RunFrom({root});
}

Result<SkylineOutput> SkylineEngine::RunFrom(
    const std::vector<SearchEntry>& seed) {
  out_ = SkylineOutput();
  window_.Reset(dims_.size());
  CandidateHeap heap;
  for (const SearchEntry& e : seed) {
    SearchEntry copy = e;
    copy.key = copy.path.empty() ? -std::numeric_limits<double>::infinity()
                                 : EntryKey(copy.rect);
    auto pruned = Prune(copy);
    if (!pruned.ok()) return pruned.status();
    if (!*pruned) heap.push(std::move(copy));
  }
  out_.counters.heap_peak = std::max<uint64_t>(out_.counters.heap_peak,
                                               heap.size());

  while (!heap.empty()) {
    if (deadline_ && std::chrono::steady_clock::now() > *deadline_) {
      return Status::Timeout("skyline query deadline exceeded");
    }
    SearchEntry e = heap.top();
    heap.pop();
    // Re-check: the skyline may have grown since e entered the heap.
    auto pruned = Prune(e);
    if (!pruned.ok()) return pruned.status();
    if (*pruned) continue;

    if (e.is_data) {
      if (verifier_ != nullptr) {
        ScopedSpan span(trace_, "boolean_verify");
        auto ok = verifier_->Verify(e.id);
        if (!ok.ok()) return ok.status();
        ++out_.counters.verified;
        if (!*ok) {
          ++out_.counters.verify_failed;
          out_.b_list.push_back(e);
          ++out_.counters.pruned_boolean;
          continue;
        }
      }
      // Accepted results are points (min == max), so LowCoord is their
      // exact transformed coordinate; the window caches it column-major so
      // later dominance tests never touch the member rects again.
      TransformInto(e.rect);
      window_.Append(cand_scratch_.data());
      out_.skyline.push_back(e);
      continue;
    }

    ScopedSpan expand_span(trace_, "heap_expand");
    auto node_handle = tree_->ReadNode(e.id);
    if (!node_handle.ok()) return node_handle.status();
    ++out_.counters.nodes_expanded;
    NodeView node(node_handle->get(), tree_->dims());
    for (uint32_t s = 0; s < node.max_entries(); ++s) {
      if (!node.Valid(s)) continue;
      SearchEntry child;
      child.is_data = node.is_leaf();
      child.id = node.GetId(s);
      child.rect = node.GetRect(s);
      child.path = e.path;
      child.path.push_back(static_cast<uint16_t>(s + 1));
      child.key = EntryKey(child.rect);
      auto child_pruned = Prune(child);
      if (!child_pruned.ok()) return child_pruned.status();
      if (!*child_pruned) {
        heap.push(std::move(child));
        out_.counters.heap_peak =
            std::max<uint64_t>(out_.counters.heap_peak, heap.size());
      }
    }
  }
  return std::move(out_);
}

}  // namespace pcube
