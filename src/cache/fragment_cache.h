// L2 of the query cache: decoded signature bit-tree nodes, keyed by
// (cell, partial-signature SID) and shared across queries. The BufferPool
// below already caches raw signature *pages*; this layer caches the result
// of running the bitmap codec over them, so concurrent batch workers
// probing the same hot cells decode each partial once instead of once per
// query ("decode-once, probe-many"). Entries are immutable snapshots
// handed out by shared_ptr — readers never block each other beyond one
// shard mutex, and invalidation is epoch-based and lazy (see epoch.h).
//
// Negative entries (the store has no partial for this SID) are cached too:
// the cursor's probing rule touches many non-existent SIDs per query, and
// each would otherwise cost a store lookup.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "bitmap/bitvector.h"
#include "cache/epoch.h"
#include "cache/slru.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "rtree/path.h"

namespace pcube {

/// One cached decode: the nodes this partial contributed to the fragment,
/// in the order the codec produced them. `present == false` caches a
/// NotFound (the nodes vector is then empty).
struct CachedFragment {
  bool present = false;
  std::vector<std::pair<Path, BitVector>> nodes;
  uint64_t epoch = 0;  ///< DataEpoch::OfCell at fill time
  size_t charge = 0;   ///< approximate bytes, for the SLRU budget
};

/// Sharded SLRU cache of decoded partial signatures.
/// Thread-safe; all methods may be called concurrently.
class FragmentCache {
 public:
  /// `capacity_bytes` is the total budget across shards; `epoch` must
  /// outlive the cache.
  FragmentCache(size_t capacity_bytes, const DataEpoch* epoch);

  /// Returns the cached decode of (cell, sid) if present AND still at the
  /// cell's current epoch; stale entries are erased (counted as stale, not
  /// miss) and nullptr returned.
  std::shared_ptr<const CachedFragment> Lookup(CellId cell, uint64_t sid);

  /// Caches a decode stamped with `epoch` (read BEFORE the store load, so
  /// a concurrent update can only make the entry look stale, never fresh).
  void Insert(CellId cell, uint64_t sid, bool present,
              std::vector<std::pair<Path, BitVector>> nodes, uint64_t epoch);

  size_t bytes() const { return bytes_.load(std::memory_order_relaxed); }
  size_t entries() const { return entries_.load(std::memory_order_relaxed); }

  /// The epoch registry entries are validated against (fill paths read the
  /// stamp through this BEFORE loading from the store).
  const DataEpoch* epoch() const { return epoch_; }

 private:
  struct Key {
    CellId cell;
    uint64_t sid;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t x = (k.cell ^ (k.sid * 0x9e3779b97f4a7c15ULL)) + k.sid;
      x ^= x >> 33;
      x *= 0xff51afd7ed558ccdULL;
      x ^= x >> 33;
      return static_cast<size_t>(x);
    }
  };
  static constexpr size_t kShards = 16;
  /// Lock order: shard mutexes are leaves and never nested (one shard per
  /// Lookup/Insert; the codec decode happens before the lock is taken).
  struct Shard {
    Mutex mu;
    SlruShard<Key, std::shared_ptr<const CachedFragment>, KeyHash> slru
        GUARDED_BY(mu);
  };
  Shard& ShardOf(const Key& k) {
    return shards_[KeyHash{}(k) >> 57 & (kShards - 1)];
  }

  const DataEpoch* epoch_;
  std::unique_ptr<Shard[]> shards_;
  std::atomic<size_t> bytes_{0};
  std::atomic<size_t> entries_{0};

  Counter* hits_;
  Counter* misses_;
  Counter* stale_;
  Counter* evictions_;
};

}  // namespace pcube
