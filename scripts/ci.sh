#!/usr/bin/env bash
# CI driver: builds and tests the tree five ways —
#   1. plain RelWithDebInfo, full ctest suite;
#   2. ThreadSanitizer (-DPCUBE_SANITIZE=thread), concurrency-focused tests
#      (thread pool, striped buffer pool, batch executor, metrics registry,
#      plus the classic buffer pool and workbench suites that share the
#      touched code);
#   3. AddressSanitizer (-DPCUBE_SANITIZE=address), robustness-focused tests
#      (fault injection, fuzz corpus, checksums, page manager, status);
#   4. bench_throughput smoke run (tiny dataset, {1,2} workers) validating
#      the observability artifacts: BENCH_throughput.json must carry the
#      latency quantiles, and the metrics dump + query log must exist. The
#      three artifacts are collected under build/artifacts/.
#   5. corruption gate: build a file-backed database with the CLI, flip a
#      byte in every signature page, and assert that `pcube verify` flags
#      it, that a signature-plan query degrades to boolean-first, and that
#      the degraded answer matches the pre-corruption reference;
#   6. cache smoke: bench_cache on a small repeated workload — fails unless
#      the warm pass records L1 hits and beats the cold pass, and the
#      metrics dump carries the cache counters and hit-rate gauges.
# Usage: scripts/ci.sh [jobs]   (default: nproc)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

echo "=== plain build ==="
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build -j "$JOBS"
echo "=== plain ctest ==="
ctest --test-dir build --output-on-failure

echo "=== tsan build ==="
cmake -B build-tsan -S . -DPCUBE_SANITIZE=thread
cmake --build build-tsan -j "$JOBS" --target \
  thread_pool_test buffer_pool_concurrency_test batch_executor_test \
  metrics_test buffer_pool_test workbench_test cache_test \
  cache_concurrency_test
echo "=== tsan ctest ==="
ctest --test-dir build-tsan --output-on-failure -R \
  '^(thread_pool_test|buffer_pool_concurrency_test|batch_executor_test|metrics_test|buffer_pool_test|workbench_test|cache_test|cache_concurrency_test)$'

echo "=== asan build ==="
cmake -B build-asan -S . -DPCUBE_SANITIZE=address
cmake --build build-asan -j "$JOBS" --target \
  fault_injection_test fuzz_corpus_test status_test page_manager_test \
  buffer_pool_test request_test cache_test
echo "=== asan ctest ==="
ctest --test-dir build-asan --output-on-failure -R \
  '^(fault_injection_test|fuzz_corpus_test|status_test|page_manager_test|buffer_pool_test|request_test|cache_test)$'

echo "=== throughput smoke ==="
SMOKE_DIR=build/smoke
mkdir -p "$SMOKE_DIR"
(cd "$SMOKE_DIR" &&
 PCUBE_THROUGHPUT_SMOKE=1 \
 PCUBE_THROUGHPUT_ROWS=2000 \
 PCUBE_THROUGHPUT_QUERIES=24 \
 PCUBE_THROUGHPUT_LATENCY_US=100 \
 ../bench/bench_throughput)
for field in latency_p50 latency_p95 latency_p99; do
  if ! grep -q "\"$field\"" "$SMOKE_DIR/BENCH_throughput.json"; then
    echo "ci.sh: BENCH_throughput.json is missing $field" >&2
    exit 1
  fi
done
for artifact in BENCH_throughput_metrics.prom BENCH_throughput_querylog.jsonl; do
  if [ ! -s "$SMOKE_DIR/$artifact" ]; then
    echo "ci.sh: $artifact missing or empty" >&2
    exit 1
  fi
done
if ! grep -q '^pcube_bufferpool_hits_total' "$SMOKE_DIR/BENCH_throughput_metrics.prom"; then
  echo "ci.sh: metrics dump lacks buffer-pool counters" >&2
  exit 1
fi
mkdir -p build/artifacts
cp "$SMOKE_DIR"/BENCH_throughput.json \
   "$SMOKE_DIR"/BENCH_throughput_metrics.prom \
   "$SMOKE_DIR"/BENCH_throughput_querylog.jsonl build/artifacts/
echo "ci.sh: artifacts in build/artifacts/"

echo "=== corruption gate ==="
GATE_DIR=build/corruption-gate
rm -rf "$GATE_DIR"
mkdir -p "$GATE_DIR"
PCUBE=build/tools/pcube
"$PCUBE" generate --rows 3000 --bool 3 --pref 2 --card 8 --seed 5 \
  --out "$GATE_DIR/data.csv" >/dev/null
"$PCUBE" build --csv "$GATE_DIR/data.csv" --spec bbbpp --header \
  --db "$GATE_DIR/gate.pcube" >/dev/null
# Reference answer from the boolean-first plan (never touches signatures).
"$PCUBE" skyline --db "$GATE_DIR/gate.pcube" --where "0=#3" --plan boolean \
  --limit 100000 | grep '^  #' | sort > "$GATE_DIR/reference.txt"
[ -s "$GATE_DIR/reference.txt" ] || {
  echo "ci.sh: gate reference query returned nothing" >&2; exit 1; }
"$PCUBE" verify --db "$GATE_DIR/gate.pcube" >/dev/null || {
  echo "ci.sh: verify failed on a pristine database" >&2; exit 1; }
"$PCUBE" corrupt --db "$GATE_DIR/gate.pcube" --kind signature >/dev/null
if "$PCUBE" verify --db "$GATE_DIR/gate.pcube" >/dev/null 2>&1; then
  echo "ci.sh: verify missed the corrupted signature pages" >&2
  exit 1
fi
"$PCUBE" skyline --db "$GATE_DIR/gate.pcube" --where "0=#3" --plan signature \
  --limit 100000 > "$GATE_DIR/degraded_run.txt"
grep -q '^degraded:' "$GATE_DIR/degraded_run.txt" || {
  echo "ci.sh: query on corrupt signatures did not report degradation" >&2
  exit 1
}
grep '^  #' "$GATE_DIR/degraded_run.txt" | sort > "$GATE_DIR/degraded.txt"
diff -u "$GATE_DIR/reference.txt" "$GATE_DIR/degraded.txt" || {
  echo "ci.sh: degraded answer differs from the reference" >&2
  exit 1
}
echo "ci.sh: corruption gate passed"

echo "=== cache smoke ==="
CACHE_DIR=build/cache-smoke
mkdir -p "$CACHE_DIR"
# bench_cache itself exits non-zero when the warm pass records no L1 hits,
# misses the 2x warm-over-cold bar, or the hot pass falls below cold.
(cd "$CACHE_DIR" &&
 PCUBE_CACHE_ROWS=2000 \
 PCUBE_CACHE_QUERIES=24 \
 PCUBE_CACHE_LATENCY_US=100 \
 PCUBE_CACHE_WORKERS=2 \
 PCUBE_CACHE_HOT_PASSES=2 \
 ../bench/bench_cache)
for field in warm_over_cold l1_hit_rate; do
  if ! grep -q "\"$field\"" "$CACHE_DIR/BENCH_cache.json"; then
    echo "ci.sh: BENCH_cache.json is missing $field" >&2
    exit 1
  fi
done
for counter in pcube_result_cache_hits_total pcube_fragment_cache_hits_total \
               pcube_result_cache_hit_rate; do
  if ! grep -q "^$counter" "$CACHE_DIR/BENCH_cache_metrics.prom"; then
    echo "ci.sh: metrics dump lacks $counter" >&2
    exit 1
  fi
done
if ! grep -q '"cache":' "$CACHE_DIR/BENCH_cache_querylog.jsonl"; then
  echo "ci.sh: query log records lack the cache: field" >&2
  exit 1
fi
cp "$CACHE_DIR"/BENCH_cache.json "$CACHE_DIR"/BENCH_cache_metrics.prom \
   "$CACHE_DIR"/BENCH_cache_querylog.jsonl build/artifacts/
echo "ci.sh: cache smoke passed"

echo "ci.sh: all green"
