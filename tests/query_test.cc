// Query engine tests: signature-based skyline and top-k (Algorithm 1) must
// return exactly the naive reference answers across data distributions,
// predicate counts, preference-dimension subsets, ranking functions and k.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "data/generators.h"
#include "query/reference.h"
#include "workbench/workbench.h"

namespace pcube {
namespace {

std::vector<TupleId> SkylineTids(const SkylineOutput& out) {
  std::vector<TupleId> tids;
  for (const SearchEntry& e : out.skyline) tids.push_back(e.id);
  std::sort(tids.begin(), tids.end());
  return tids;
}

struct QueryCase {
  PrefDistribution dist;
  int num_preds;
};

class QueryEngineTest : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  std::unique_ptr<Workbench> MakeWorkbench(PrefDistribution dist,
                                           uint64_t seed, int dp = 2) {
    SyntheticConfig config;
    config.num_tuples = 3000;
    config.num_bool = 3;
    config.num_pref = dp;
    config.bool_cardinality = 4;
    config.dist = dist;
    config.seed = seed;
    WorkbenchOptions options;
    options.rtree.max_entries = 10;
    options.rtree_by_insertion = true;
    auto wb = Workbench::Build(GenerateSynthetic(config), options);
    PCUBE_CHECK(wb.ok());
    return std::move(*wb);
  }

  PredicateSet MakePreds(int n, Random* rng) {
    PredicateSet preds;
    for (int i = 0; i < n; ++i) {
      preds.Add({i, static_cast<uint32_t>(rng->Uniform(4))});
    }
    return preds;
  }
};

TEST_P(QueryEngineTest, SkylineMatchesNaive) {
  auto [dist_int, num_preds] = GetParam();
  PrefDistribution dist = static_cast<PrefDistribution>(dist_int);
  auto wb = MakeWorkbench(dist, 900 + dist_int * 10 + num_preds);
  Random rng(dist_int * 100 + num_preds);
  for (int trial = 0; trial < 4; ++trial) {
    PredicateSet preds = MakePreds(num_preds, &rng);
    auto out = wb->SignatureSkyline(preds);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(SkylineTids(*out), NaiveSkyline(wb->data(), preds))
        << preds.ToString();
  }
}

TEST_P(QueryEngineTest, TopKMatchesNaive) {
  auto [dist_int, num_preds] = GetParam();
  PrefDistribution dist = static_cast<PrefDistribution>(dist_int);
  auto wb = MakeWorkbench(dist, 950 + dist_int * 10 + num_preds);
  Random rng(dist_int * 200 + num_preds);
  LinearRanking f({0.7, 0.3});
  for (size_t k : {1u, 10u, 50u}) {
    PredicateSet preds = MakePreds(num_preds, &rng);
    auto out = wb->SignatureTopK(preds, f, k);
    ASSERT_TRUE(out.ok());
    auto naive = NaiveTopK(wb->data(), preds, f, k);
    ASSERT_EQ(out->results.size(), naive.size()) << preds.ToString();
    for (size_t i = 0; i < naive.size(); ++i) {
      // Scores must agree exactly; ids may differ under score ties.
      EXPECT_DOUBLE_EQ(out->results[i].key, naive[i].second) << "rank " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DistributionsAndPredicates, QueryEngineTest,
    ::testing::Combine(::testing::Values(0, 1, 2), ::testing::Values(0, 1, 3)));

TEST(QueryEngineSingleTest, SkylineOnPrefDimSubset) {
  SyntheticConfig config;
  config.num_tuples = 2000;
  config.num_bool = 2;
  config.num_pref = 3;
  config.bool_cardinality = 3;
  config.seed = 31;
  WorkbenchOptions options;
  options.rtree.max_entries = 10;
  auto wb = Workbench::Build(GenerateSynthetic(config), options);
  ASSERT_TRUE(wb.ok());
  PredicateSet preds{{0, 1}};
  for (std::vector<int> dims :
       {std::vector<int>{0, 1}, std::vector<int>{1, 2}, std::vector<int>{2}}) {
    auto out = (*wb)->SignatureSkyline(preds, dims);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(SkylineTids(*out), NaiveSkyline((*wb)->data(), preds, dims));
  }
}

TEST(QueryEngineSingleTest, WeightedL2TopKMatchesNaive) {
  SyntheticConfig config;
  config.num_tuples = 2500;
  config.num_bool = 2;
  config.num_pref = 2;
  config.bool_cardinality = 3;
  config.seed = 32;
  WorkbenchOptions options;
  options.rtree.max_entries = 12;
  auto wb = Workbench::Build(GenerateSynthetic(config), options);
  ASSERT_TRUE(wb.ok());
  // Example 1: distance to an expectation point.
  WeightedL2Ranking f({0.4, 0.7}, {1.0, 2.5});
  PredicateSet preds{{1, 2}};
  auto out = (*wb)->SignatureTopK(preds, f, 20);
  ASSERT_TRUE(out.ok());
  auto naive = NaiveTopK((*wb)->data(), preds, f, 20);
  ASSERT_EQ(out->results.size(), naive.size());
  for (size_t i = 0; i < naive.size(); ++i) {
    EXPECT_NEAR(out->results[i].key, naive[i].second, 1e-9);
  }
}

TEST(QueryEngineSingleTest, MinkowskiRankingMatchesNaive) {
  SyntheticConfig config;
  config.num_tuples = 1500;
  config.num_bool = 1;
  config.num_pref = 2;
  config.bool_cardinality = 2;
  config.seed = 33;
  WorkbenchOptions options;
  options.rtree.max_entries = 8;
  auto wb = Workbench::Build(GenerateSynthetic(config), options);
  ASSERT_TRUE(wb.ok());
  MinkowskiRanking f({0.2, 0.8}, {1.0, 1.0}, 3.0);
  auto out = (*wb)->SignatureTopK({{0, 1}}, f, 15);
  ASSERT_TRUE(out.ok());
  auto naive = NaiveTopK((*wb)->data(), {{0, 1}}, f, 15);
  ASSERT_EQ(out->results.size(), naive.size());
  for (size_t i = 0; i < naive.size(); ++i) {
    EXPECT_NEAR(out->results[i].key, naive[i].second, 1e-9);
  }
}

TEST(QueryEngineSingleTest, EmptyCellReturnsNothingCheaply) {
  SyntheticConfig config;
  config.num_tuples = 2000;
  config.num_bool = 1;
  config.num_pref = 2;
  config.bool_cardinality = 1000;  // most values unused
  config.seed = 34;
  WorkbenchOptions options;
  auto wb = Workbench::Build(GenerateSynthetic(config), options);
  ASSERT_TRUE(wb.ok());
  // Find a value with no tuples.
  uint32_t missing = 0;
  std::vector<bool> present(1000, false);
  for (TupleId t = 0; t < 2000; ++t) {
    present[(*wb)->data().BoolValue(t, 0)] = true;
  }
  while (present[missing]) ++missing;
  ASSERT_TRUE((*wb)->ColdStart().ok());
  auto out = (*wb)->SignatureSkyline({{0, missing}});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->skyline.empty());
  // The root's children were boolean-pruned without reading their pages:
  // only the root node itself is expanded.
  EXPECT_LE(out->counters.nodes_expanded, 1u);
}

TEST(QueryEngineSingleTest, CountersArePopulated) {
  SyntheticConfig config;
  config.num_tuples = 3000;
  config.num_bool = 2;
  config.num_pref = 2;
  config.bool_cardinality = 4;
  config.seed = 35;
  WorkbenchOptions options;
  options.rtree.max_entries = 10;
  auto wb = Workbench::Build(GenerateSynthetic(config), options);
  ASSERT_TRUE(wb.ok());
  ASSERT_TRUE((*wb)->ColdStart().ok());
  auto out = (*wb)->SignatureSkyline({{0, 1}});
  ASSERT_TRUE(out.ok());
  EXPECT_GT(out->counters.heap_peak, 0u);
  EXPECT_GT(out->counters.nodes_expanded, 0u);
  EXPECT_GT(out->counters.pruned_boolean, 0u);
  // Disk accounting: node expansions show up as R-tree block reads.
  IoStats io = (*wb)->IoSince();
  EXPECT_EQ(io.ReadCount(IoCategory::kRtreeBlock), out->counters.nodes_expanded);
  EXPECT_GT(io.ReadCount(IoCategory::kSignature), 0u);
}

}  // namespace
}  // namespace pcube
