// Annotated mutex wrappers: the only lock types this codebase uses.
//
// std::mutex is invisible to Clang's thread-safety analysis; these wrappers
// carry the CAPABILITY annotations that let `-Wthread-safety` prove every
// GUARDED_BY / REQUIRES contract in the tree at compile time (enforced by
// the PCUBE_WERROR_THREAD_SAFETY build option, see DESIGN.md §11). The
// wrappers add no state and no indirection beyond the annotations — on GCC
// they compile to exactly the std primitives they wrap.
//
// Conventions:
//   * every mutex field documents WHAT it protects by annotating those
//     fields GUARDED_BY(mu_);
//   * prefer MutexLock/ReaderLock RAII guards; call Mutex::Lock()/Unlock()
//     directly only for protocols a scoped guard cannot express;
//   * condition waits go through CondVar, which re-checks under the caller's
//     already-held Mutex (REQUIRES(mu)).
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace pcube {

class CondVar;

/// Exclusive mutex (wraps std::mutex).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Tells the analysis (not the runtime) that the lock is held — for
  /// helper functions reached only from locked contexts.
  void AssertHeld() const ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Reader/writer mutex (wraps std::shared_mutex).
class CAPABILITY("mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }

  void AssertHeld() const ASSERT_CAPABILITY(this) {}
  void AssertReaderHeld() const ASSERT_SHARED_CAPABILITY(this) {}

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive guard. Supports the release/reacquire protocol the
/// BufferPool's out-of-lock page loads need (absl::ReleasableMutexLock
/// style): Unlock() early, Lock() to re-enter; the destructor releases only
/// if currently held.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() {
    if (held_) mu_->Unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void Unlock() RELEASE() {
    held_ = false;
    mu_->Unlock();
  }
  void Lock() ACQUIRE() {
    mu_->Lock();
    held_ = true;
  }

 private:
  Mutex* const mu_;
  bool held_ = true;
};

/// RAII shared (reader) guard over a SharedMutex.
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderLock() RELEASE() { mu_->UnlockShared(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// RAII exclusive (writer) guard over a SharedMutex.
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~WriterLock() RELEASE() { mu_->Unlock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Condition variable bound to Mutex at each wait (LevelDB port::CondVar
/// shape). Wait atomically releases and reacquires the caller's mutex; the
/// REQUIRES contract makes calling it unlocked a compile error under Clang.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) REQUIRES(mu) {
    // Adopt the already-held native mutex for the duration of the wait;
    // release() hands ownership back without unlocking.
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Waits until `pred()` holds; the predicate runs with `mu` held.
  template <typename Pred>
  void Wait(Mutex* mu, Pred pred) REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace pcube
