// PCube end-to-end tests: build over real R-trees, probe correctness
// against brute force, composite materialisation, Bloom variant.
#include <gtest/gtest.h>

#include "core/pcube.h"
#include "data/generators.h"
#include "query/reference.h"
#include "workbench/workbench.h"

namespace pcube {
namespace {

SyntheticConfig SmallConfig(uint64_t seed) {
  SyntheticConfig config;
  config.num_tuples = 2000;
  config.num_bool = 3;
  config.num_pref = 2;
  config.bool_cardinality = 4;
  config.seed = seed;
  return config;
}

WorkbenchOptions SmallTreeOptions() {
  WorkbenchOptions options;
  options.rtree.max_entries = 8;
  options.rtree_by_insertion = true;
  return options;
}

TEST(PCubeTest, ProbeMatchesBruteForceOnAtomicCells) {
  auto wb = Workbench::Build(GenerateSynthetic(SmallConfig(51)),
                             SmallTreeOptions());
  ASSERT_TRUE(wb.ok());
  Workbench& w = **wb;
  auto paths = PathTable::Collect(*w.tree());
  ASSERT_TRUE(paths.ok());

  for (int dim = 0; dim < 3; ++dim) {
    for (uint32_t v = 0; v < 4; ++v) {
      PredicateSet preds{{dim, v}};
      auto probe = w.cube()->MakeProbe(preds);
      ASSERT_TRUE(probe.ok());
      Signature oracle = BuildCellSignature(w.data(), *paths, preds,
                                            w.tree()->fanout(),
                                            w.cube()->levels());
      for (TupleId t = 0; t < w.data().num_tuples(); t += 37) {
        const Path& p = paths->path(t);
        for (size_t len = 1; len <= p.size(); ++len) {
          Path prefix(p.begin(), p.begin() + len);
          auto got = (*probe)->Test(prefix);
          ASSERT_TRUE(got.ok());
          EXPECT_EQ(*got, oracle.Test(prefix))
              << "dim=" << dim << " v=" << v << " " << PathToString(prefix);
        }
      }
    }
  }
}

TEST(PCubeTest, MultiPredicateLazyAndIsSoundAndTupleExact) {
  auto wb = Workbench::Build(GenerateSynthetic(SmallConfig(52)),
                             SmallTreeOptions());
  ASSERT_TRUE(wb.ok());
  Workbench& w = **wb;
  auto paths = PathTable::Collect(*w.tree());
  ASSERT_TRUE(paths.ok());

  PredicateSet preds{{0, 1}, {2, 3}};
  auto probe = w.cube()->MakeProbe(preds);
  ASSERT_TRUE(probe.ok());
  Signature exact = BuildCellSignature(w.data(), *paths, preds,
                                       w.tree()->fanout(), w.cube()->levels());
  for (TupleId t = 0; t < w.data().num_tuples(); t += 11) {
    const Path& p = paths->path(t);
    // Tuple level must be exact.
    auto leaf = (*probe)->Test(p);
    ASSERT_TRUE(leaf.ok());
    EXPECT_EQ(*leaf, preds.Matches(w.data(), t));
    // Node levels: lazy AND is an upper bound of the exact intersection —
    // it may fail to prune but must never prune a region with matches.
    for (size_t len = 1; len < p.size(); ++len) {
      Path prefix(p.begin(), p.begin() + len);
      auto got = (*probe)->Test(prefix);
      ASSERT_TRUE(got.ok());
      if (exact.Test(prefix)) {
        EXPECT_TRUE(*got);
      }
    }
  }
}

TEST(PCubeTest, CompositeMaterializationIsExactAtNodeLevel) {
  WorkbenchOptions options = SmallTreeOptions();
  options.pcube.materialize_max_dims = 2;
  auto wb = Workbench::Build(GenerateSynthetic(SmallConfig(53)), options);
  ASSERT_TRUE(wb.ok());
  Workbench& w = **wb;
  auto paths = PathTable::Collect(*w.tree());
  ASSERT_TRUE(paths.ok());

  PredicateSet preds{{0, 2}, {1, 1}};
  auto probe = w.cube()->MakeProbe(preds);
  ASSERT_TRUE(probe.ok());
  Signature exact = BuildCellSignature(w.data(), *paths, preds,
                                       w.tree()->fanout(), w.cube()->levels());
  for (TupleId t = 0; t < w.data().num_tuples(); t += 7) {
    const Path& p = paths->path(t);
    for (size_t len = 1; len <= p.size(); ++len) {
      Path prefix(p.begin(), p.begin() + len);
      auto got = (*probe)->Test(prefix);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(*got, exact.Test(prefix)) << PathToString(prefix);
    }
  }
}

TEST(PCubeTest, EmptyPredicateGivesTrueProbe) {
  auto wb = Workbench::Build(GenerateSynthetic(SmallConfig(54)),
                             SmallTreeOptions());
  ASSERT_TRUE(wb.ok());
  auto probe = (*wb)->cube()->MakeProbe({});
  ASSERT_TRUE(probe.ok());
  auto got = (*probe)->Test({1});
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(*got);
}

TEST(PCubeTest, BloomProbeNeverFalseNegative) {
  WorkbenchOptions options = SmallTreeOptions();
  options.pcube.build_bloom = true;
  auto wb = Workbench::Build(GenerateSynthetic(SmallConfig(55)), options);
  ASSERT_TRUE(wb.ok());
  Workbench& w = **wb;
  auto paths = PathTable::Collect(*w.tree());
  ASSERT_TRUE(paths.ok());

  PredicateSet preds{{1, 2}};
  auto bloom = w.cube()->MakeBloomProbe(preds);
  ASSERT_TRUE(bloom.ok());
  EXPECT_FALSE((*bloom)->exact());
  Signature exact = BuildCellSignature(w.data(), *paths, preds,
                                       w.tree()->fanout(), w.cube()->levels());
  uint64_t false_positives = 0, probes = 0;
  for (TupleId t = 0; t < w.data().num_tuples(); t += 3) {
    const Path& p = paths->path(t);
    for (size_t len = 1; len <= p.size(); ++len) {
      Path prefix(p.begin(), p.begin() + len);
      auto got = (*bloom)->Test(prefix);
      ASSERT_TRUE(got.ok());
      ++probes;
      if (exact.Test(prefix)) {
        EXPECT_TRUE(*got) << "bloom false negative at " << PathToString(prefix);
      } else if (*got) {
        ++false_positives;
      }
    }
  }
  EXPECT_LT(static_cast<double>(false_positives) / probes, 0.2);
}

TEST(PCubeTest, BloomProbeWithoutBuildFails) {
  auto wb = Workbench::Build(GenerateSynthetic(SmallConfig(56)),
                             SmallTreeOptions());
  ASSERT_TRUE(wb.ok());
  EXPECT_FALSE((*wb)->cube()->MakeBloomProbe({{0, 0}}).ok());
}

TEST(PCubeTest, MaterializedSizeIsBounded) {
  auto wb = Workbench::Build(GenerateSynthetic(SmallConfig(57)),
                             SmallTreeOptions());
  ASSERT_TRUE(wb.ok());
  Workbench& w = **wb;
  EXPECT_GT(w.cube()->num_cells(), 0u);
  EXPECT_GT(w.cube()->MaterializedPages(), 0u);
  // P-Cube should be much smaller than the R-tree itself (Fig. 6 shows 8x).
  EXPECT_LT(w.cube()->MaterializedPages(), w.tree()->num_pages());
}

}  // namespace
}  // namespace pcube
