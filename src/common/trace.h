// Per-query tracing: a Trace collects per-stage timing aggregates
// (signature probe, heap expansion, boolean verification, page I/O wait...)
// while one query executes, and a QueryLog appends one structured JSONL
// record per finished query. Together with the MetricsRegistry this is the
// observability substrate of the query path: metrics answer "how is the
// system doing", traces answer "where did THIS query spend its time".
//
// Span model: stages are independent aggregates keyed by name, each with a
// call count and total seconds. Spans may nest (a signature probe that
// faults a page accumulates both `signature_probe` and `io_wait`), so stage
// times overlap rather than partitioning the query's wall time.
//
// Thread-safety: a Trace belongs to one query and is recorded into by the
// single thread running it (engines are per-query single-threaded by
// contract). Layers that have no Trace* at hand — the BufferPool charging
// I/O wait — reach the current query's trace through the thread-local
// binding installed by Trace::ScopedBind. QueryLog::Append is fully
// thread-safe (the BatchExecutor's workers share one log).
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/timer.h"

namespace pcube {

/// Timing aggregates of one query execution, keyed by stage name.
class Trace {
 public:
  struct Stage {
    std::string name;
    uint64_t count = 0;
    double seconds = 0;
  };

  Trace() : id_(NextId()) {}

  /// Process-unique id, stamped into the query log record.
  uint64_t id() const { return id_; }

  /// Adds one observation of `stage` (creates the stage on first use).
  void Record(std::string_view stage, double seconds);

  const std::vector<Stage>& stages() const { return stages_; }

  /// Total seconds recorded for `stage` (0 when never recorded).
  double StageSeconds(std::string_view stage) const;

  /// JSON object mapping stage name to {"count": n, "seconds": s}.
  std::string SpansJson() const;

  /// Binds a trace to the calling thread so lower layers (BufferPool) can
  /// attribute work to the running query; restores the previous binding on
  /// destruction. Binding null disables attribution for the scope.
  class ScopedBind {
   public:
    explicit ScopedBind(Trace* trace);
    ~ScopedBind();
    ScopedBind(const ScopedBind&) = delete;
    ScopedBind& operator=(const ScopedBind&) = delete;

   private:
    Trace* saved_;
  };

  /// The trace bound to the calling thread, or nullptr.
  static Trace* Current();

 private:
  static uint64_t NextId();

  uint64_t id_;
  // Queries touch a handful of distinct stages; linear scan beats a map.
  std::vector<Stage> stages_;
};

/// RAII span: records elapsed wall time into `trace` under `stage` on
/// destruction. Null trace makes it a no-op.
class ScopedSpan {
 public:
  ScopedSpan(Trace* trace, const char* stage) : trace_(trace), stage_(stage) {}
  ~ScopedSpan() {
    if (trace_ != nullptr) trace_->Record(stage_, timer_.ElapsedSeconds());
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Trace* trace_;
  const char* stage_;
  Timer timer_;
};

/// Thread-safe JSONL sink: one line per query.
class QueryLog {
 public:
  /// Non-owning: lines go to `*out`, which must outlive the log.
  explicit QueryLog(std::ostream* out) : out_(out) {}

  /// Owning: creates/truncates `path`.
  static Result<std::unique_ptr<QueryLog>> OpenFile(const std::string& path);

  /// Appends one record (a complete JSON object WITHOUT trailing newline;
  /// the log adds it) and flushes.
  void Append(const std::string& json_line) EXCLUDES(mu_);

  uint64_t records() const EXCLUDES(mu_);

 private:
  explicit QueryLog(std::unique_ptr<std::ofstream> owned)
      : out_(owned.get()), owned_(std::move(owned)) {}

  mutable Mutex mu_;
  std::ostream* out_ PT_GUARDED_BY(mu_);
  // pcube-lint: lock-free(set once in the constructor; only keeps the
  // stream out_ points at alive — all I/O goes through out_ under mu_)
  std::unique_ptr<std::ofstream> owned_;
  uint64_t records_ GUARDED_BY(mu_) = 0;
};

}  // namespace pcube
