# Empty compiler generated dependencies file for bench_fig5_construction.
# This may be replaced when dependencies are built.
