// Figure 13: top-k execution time w.r.t. k in {10, 20, 50, 100} for
// Boolean-first, Ranking (domination-first), IndexMerge [14], and Signature,
// with a random linear ranking function f = aX + bY + cZ.
//
// Paper's claims to reproduce: Boolean is insensitive to k; Ranking does
// best at small k; Signature runs orders of magnitude faster and also beats
// IndexMerge, because IndexMerge joins the search space online while the
// signature materialises the joint space offline.
#include "bench_common.h"

namespace pcube::bench {
namespace {

Workbench* TopKWorkbench() {
  uint64_t n = TupleSweep()[0] * 2;  // stands in for the paper's 1M dataset
  return CachedWorkbench2("fig13", [n] {
    return GenerateSynthetic(PaperConfig(n));  // Dp = 3: f over X, Y, Z
  });
}

LinearRanking RandomLinear() {
  Random rng(7);
  return LinearRanking({rng.NextDouble(), rng.NextDouble(), rng.NextDouble()});
}

void BM_TopK(benchmark::State& state, const char* method) {
  size_t k = static_cast<size_t>(state.range(0));
  Workbench* wb = TopKWorkbench();
  PredicateSet preds = OnePredicate(100);
  LinearRanking f = RandomLinear();
  MeasuredRun last;
  for (auto _ : state) {
    PCUBE_CHECK_OK(wb->ColdStart());
    Timer t;
    std::string m(method);
    if (m == "signature") {
      auto out = wb->SignatureTopK(preds, f, k);
      PCUBE_CHECK(out.ok());
      last.heap_peak = out->counters.heap_peak;
      last.result_size = out->results.size();
    } else if (m == "ranking") {
      auto out = RankingFirstTopK(*wb->tree(), *wb->table(), preds, f, k);
      PCUBE_CHECK(out.ok());
      last.heap_peak = out->counters.heap_peak;
      last.result_size = out->results.size();
    } else if (m == "indexmerge") {
      auto out = IndexMergeTopK(*wb->tree(), wb->indices(), preds, f, k);
      PCUBE_CHECK(out.ok());
      last.heap_peak = out->counters.heap_peak;
      last.result_size = out->results.size();
    } else {
      BooleanFirstExecutor boolean(&wb->indices(), wb->table());
      auto out = boolean.TopK(preds, f, k);
      PCUBE_CHECK(out.ok());
      last.heap_peak = out->counters.heap_peak;
      last.result_size = out->tids.size();
    }
    last.seconds = t.ElapsedSeconds();
    last.io = wb->IoSince();
    state.SetIterationTime(CostSeconds(last));
  }
  ReportRun(state, last);
}

void RegisterAll() {
  for (int k : {10, 20, 50, 100}) {
    for (const char* method :
         {"boolean", "ranking", "indexmerge", "signature"}) {
      benchmark::RegisterBenchmark(
          (std::string("fig13/TopK/") + method).c_str(), BM_TopK, method)
          ->Arg(k)
          ->Iterations(3)
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace pcube::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  pcube::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
