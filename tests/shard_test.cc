// Differential property suite for the scatter-gather coordinator
// (DESIGN.md §13): a ShardedWorkbench at every shard count must return
// answers byte-identical to an unsharded Workbench over the same relation —
// for skylines, k-skybands, dynamic skylines, pref_dims projections and
// top-k, across uniform / correlated / anti-correlated data. Also pins the
// coordinator's cache placement (a hot request is served from the L1
// WITHOUT fanning out, observed through pcube_shard_queries_total), the
// shard map's determinism/completeness, and empty-shard handling.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "shard/sharded_workbench.h"
#include "workbench/workbench.h"

namespace pcube {
namespace {

Dataset MakeData(uint64_t rows, uint64_t seed,
                 PrefDistribution dist = PrefDistribution::kUniform,
                 uint32_t cardinality = 12) {
  SyntheticConfig config;
  config.num_tuples = rows;
  config.num_bool = 3;
  config.num_pref = 3;
  config.bool_cardinality = cardinality;
  config.seed = seed;
  config.dist = dist;
  return GenerateSynthetic(config);
}

/// The unsharded reference, caches off so every Run executes its engine.
std::unique_ptr<Workbench> Reference(const Dataset& data) {
  WorkbenchOptions options;
  options.result_cache_mb = 0;
  options.fragment_cache_mb = 0;
  auto wb = Workbench::Build(data, options);
  PCUBE_CHECK(wb.ok()) << wb.status().ToString();
  return std::move(*wb);
}

std::unique_ptr<ShardedWorkbench> Sharded(const Dataset& data,
                                          size_t num_shards,
                                          size_t result_cache_mb = 0) {
  ShardedOptions options;
  options.num_shards = num_shards;
  options.result_cache_mb = result_cache_mb;
  options.shard.fragment_cache_mb = 0;
  auto sw = ShardedWorkbench::Build(data, options);
  PCUBE_CHECK(sw.ok()) << sw.status().ToString();
  return std::move(*sw);
}

/// A top-k answer with its tie order normalized: the engine pops exact
/// score ties in heap order, the coordinator's merge breaks them by global
/// tid — both are correct answers, so comparisons sort (score, tid) pairs.
/// Skylines (no scores) pass through untouched: their tid order is pinned.
std::vector<std::pair<double, TupleId>> Canonical(
    const std::vector<TupleId>& tids, const std::vector<double>& scores) {
  std::vector<std::pair<double, TupleId>> pairs;
  pairs.reserve(tids.size());
  for (size_t i = 0; i < tids.size(); ++i) {
    pairs.emplace_back(scores.empty() ? 0.0 : scores[i], tids[i]);
  }
  if (!scores.empty()) std::sort(pairs.begin(), pairs.end());
  return pairs;
}

/// Every query shape the coordinator merges: plain skylines, k-skybands,
/// a pref_dims projection, a dynamic skyline, and both ranking families —
/// each with zero, one and two predicates.
std::vector<QueryRequest> DifferentialWorkload(uint32_t cardinality) {
  std::vector<QueryRequest> queries;
  std::vector<PredicateSet> pred_sets;
  pred_sets.push_back(PredicateSet{});
  pred_sets.push_back(PredicateSet{{0, 1 % cardinality}});
  pred_sets.push_back(
      PredicateSet{{1, 3 % cardinality}, {2, 7 % cardinality}});

  auto linear = std::make_shared<LinearRanking>(
      std::vector<double>{1.0, 0.5, 2.0});
  auto l2 = std::make_shared<WeightedL2Ranking>(
      std::vector<double>{0.3, 0.6, 0.9}, std::vector<double>{1.0, 2.0, 1.0});

  for (const PredicateSet& preds : pred_sets) {
    queries.push_back(QueryRequest::Skyline(preds));

    SkylineQueryOptions band;
    band.skyband_k = 3;
    queries.push_back(QueryRequest::Skyline(preds, band));

    SkylineQueryOptions projected;
    projected.pref_dims = {0, 2};
    projected.skyband_k = 2;
    queries.push_back(QueryRequest::Skyline(preds, projected));

    SkylineQueryOptions dynamic;
    dynamic.origin = {0.5f, 0.25f, 0.75f};
    queries.push_back(QueryRequest::Skyline(preds, dynamic));

    queries.push_back(QueryRequest::TopK(preds, linear, 7));
    queries.push_back(QueryRequest::TopK(preds, l2, 5));
  }
  return queries;
}

/// Runs the whole workload against the reference and against coordinators
/// at every shard count in `sweep`, asserting byte-identical answers.
void ExpectShardingInvisible(const Dataset& data,
                             const std::vector<size_t>& sweep,
                             uint32_t cardinality,
                             const std::string& label) {
  auto reference = Reference(data);
  std::vector<QueryRequest> queries = DifferentialWorkload(cardinality);

  std::vector<std::vector<std::pair<double, TupleId>>> expected;
  for (const QueryRequest& q : queries) {
    auto resp = reference->Run(q);
    ASSERT_TRUE(resp.ok()) << label << ": " << resp.status().ToString();
    expected.push_back(Canonical(resp->tids, resp->scores));
  }

  for (size_t num_shards : sweep) {
    auto sharded = Sharded(data, num_shards);
    for (size_t i = 0; i < queries.size(); ++i) {
      auto resp = sharded->Run(queries[i]);
      ASSERT_TRUE(resp.ok())
          << label << ": query " << i << " at " << num_shards << " shards: "
          << resp.status().ToString();
      EXPECT_EQ(Canonical(resp->tids, resp->scores), expected[i])
          << label << ": answer diverges for query " << i << " at "
          << num_shards << " shards";
      EXPECT_EQ(resp->fanout_shards, sharded->live_shards());
    }
  }
}

TEST(ShardMapTest, PartitionIsDeterministicAndComplete) {
  Dataset data = MakeData(600, 3);
  for (size_t num_shards : {1, 2, 4, 7}) {
    ShardPartition p = PartitionByBoolHash(data, num_shards);
    ASSERT_EQ(p.datasets.size(), num_shards);
    ASSERT_EQ(p.global_tids.size(), num_shards);

    // Every global tuple lands in exactly one shard, in ascending local
    // order, and ShardOfTuple names that shard.
    std::set<TupleId> seen;
    for (size_t s = 0; s < num_shards; ++s) {
      ASSERT_EQ(p.datasets[s].num_tuples(), p.global_tids[s].size());
      ASSERT_TRUE(std::is_sorted(p.global_tids[s].begin(),
                                 p.global_tids[s].end()));
      for (size_t local = 0; local < p.global_tids[s].size(); ++local) {
        TupleId tid = p.global_tids[s][local];
        EXPECT_TRUE(seen.insert(tid).second) << "tuple assigned twice";
        EXPECT_EQ(ShardOfTuple(data, tid, num_shards), s);
        // The shard's copy carries the tuple's exact row.
        for (int d = 0; d < data.num_bool(); ++d) {
          EXPECT_EQ(p.datasets[s].BoolValue(local, d),
                    data.BoolValue(tid, d));
        }
        for (int d = 0; d < data.num_pref(); ++d) {
          EXPECT_EQ(p.datasets[s].PrefValue(local, d),
                    data.PrefValue(tid, d));
        }
      }
    }
    EXPECT_EQ(seen.size(), data.num_tuples());

    // Deterministic: a second partition is identical.
    ShardPartition again = PartitionByBoolHash(data, num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      EXPECT_EQ(again.global_tids[s], p.global_tids[s]);
    }
  }
}

TEST(ShardMapTest, EqualBoolRowsColocate) {
  Dataset data = MakeData(400, 9, PrefDistribution::kUniform,
                          /*cardinality=*/4);
  for (TupleId a = 0; a < data.num_tuples(); ++a) {
    for (TupleId b = a + 1; b < std::min<TupleId>(a + 25, data.num_tuples());
         ++b) {
      std::span<const uint32_t> ra = data.BoolRow(a);
      std::span<const uint32_t> rb = data.BoolRow(b);
      if (std::equal(ra.begin(), ra.end(), rb.begin(), rb.end())) {
        EXPECT_EQ(ShardOfTuple(data, a, 7), ShardOfTuple(data, b, 7));
      }
    }
  }
}

TEST(ShardedWorkbenchTest, DifferentialUniform) {
  ExpectShardingInvisible(MakeData(1500, 11), {1, 2, 4, 7}, 12, "uniform");
}

TEST(ShardedWorkbenchTest, DifferentialCorrelated) {
  ExpectShardingInvisible(MakeData(1500, 12, PrefDistribution::kCorrelated),
                          {2, 7}, 12, "correlated");
}

TEST(ShardedWorkbenchTest, DifferentialAntiCorrelated) {
  // Anti-correlated data has large skylines — the worst case for the merge
  // (big unions, heavy dominance filtering).
  ExpectShardingInvisible(
      MakeData(1200, 13, PrefDistribution::kAntiCorrelated), {2, 4}, 12,
      "anti-correlated");
}

TEST(ShardedWorkbenchTest, RunBatchMatchesUnshardedAnswers) {
  Dataset data = MakeData(1200, 17);
  auto reference = Reference(data);
  auto sharded = Sharded(data, 4);

  auto linear = std::make_shared<LinearRanking>(
      std::vector<double>{1.0, 1.0, 1.0});
  std::vector<BatchQuery> batch;
  for (uint32_t v = 0; v < 6; ++v) {
    batch.push_back(BatchQuery::Skyline(PredicateSet{{0, v}}));
    batch.push_back(BatchQuery::TopK(PredicateSet{{1, v}}, linear, 6));
  }
  SkylineQueryOptions band;
  band.skyband_k = 2;
  batch.push_back(BatchQuery::Skyline(PredicateSet{}, band));

  BatchOutput out = sharded->RunBatch(batch, /*num_workers=*/3);
  ASSERT_EQ(out.results.size(), batch.size());
  EXPECT_EQ(out.failed, 0u);
  EXPECT_EQ(out.latency.count, batch.size());

  for (size_t i = 0; i < batch.size(); ++i) {
    const BatchQueryResult& r = out.results[i];
    ASSERT_TRUE(r.status.ok()) << "query " << i << ": "
                               << r.status.ToString();
    QueryRequest request;
    if (batch[i].kind == BatchQuery::Kind::kSkyline) {
      request = QueryRequest::Skyline(batch[i].preds, batch[i].skyline);
    } else {
      request =
          QueryRequest::TopK(batch[i].preds, batch[i].ranking, batch[i].k);
    }
    auto expect = reference->Run(request);
    ASSERT_TRUE(expect.ok());
    EXPECT_EQ(Canonical(r.response.tids, r.response.scores),
              Canonical(expect->tids, expect->scores))
        << "query " << i;
    EXPECT_EQ(r.response.fanout_shards, sharded->live_shards());
  }
}

TEST(ShardedWorkbenchTest, HotRequestServedFromL1WithoutFanout) {
  Dataset data = MakeData(800, 21);
  auto sharded = Sharded(data, 4, /*result_cache_mb=*/8);
  ASSERT_GT(sharded->live_shards(), 1u);
  Counter* scatter =
      MetricsRegistry::Default().GetCounter("pcube_shard_queries_total");

  QueryRequest request = QueryRequest::Skyline(PredicateSet{{0, 2}});
  const uint64_t before = scatter->Value();
  auto cold = sharded->Run(request);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold->cache, CacheOutcome::kMiss);
  EXPECT_EQ(cold->fanout_shards, sharded->live_shards());
  // The miss scattered one sub-query per live shard.
  EXPECT_EQ(scatter->Value() - before, sharded->live_shards());

  const uint64_t after_cold = scatter->Value();
  auto hot = sharded->Run(request);
  ASSERT_TRUE(hot.ok());
  EXPECT_EQ(hot->cache, CacheOutcome::kHit);
  // The whole point of coordinator-level caching: the hot request never
  // reaches a shard.
  EXPECT_EQ(hot->fanout_shards, 0u);
  EXPECT_EQ(scatter->Value(), after_cold);
  EXPECT_EQ(hot->tids, cold->tids);

  // A forced plan hint bypasses the cache and fans out again.
  QueryRequest forced = request;
  forced.hint = PlanHint::kSignature;
  auto bypass = sharded->Run(forced);
  ASSERT_TRUE(bypass.ok());
  EXPECT_EQ(bypass->cache, CacheOutcome::kBypass);
  EXPECT_EQ(scatter->Value() - after_cold, sharded->live_shards());
  EXPECT_EQ(bypass->tids, cold->tids);
}

TEST(ShardedWorkbenchTest, EmptyShardsAreSkippedNotFatal) {
  // One boolean dimension with two values: at most two distinct rows, so
  // at most two of the seven shards can be live.
  SyntheticConfig config;
  config.num_tuples = 300;
  config.num_bool = 1;
  config.num_pref = 3;
  config.bool_cardinality = 2;
  config.seed = 5;
  Dataset data = GenerateSynthetic(config);

  auto reference = Reference(data);
  auto sharded = Sharded(data, 7);
  EXPECT_EQ(sharded->num_shards(), 7u);
  EXPECT_LE(sharded->live_shards(), 2u);
  EXPECT_GE(sharded->live_shards(), 1u);
  EXPECT_NE(sharded->DescribeShards().find("(empty)"), std::string::npos);

  for (uint32_t v = 0; v < 2; ++v) {
    QueryRequest request = QueryRequest::Skyline(PredicateSet{{0, v}});
    auto expect = reference->Run(request);
    auto got = sharded->Run(request);
    ASSERT_TRUE(expect.ok());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->tids, expect->tids);
    EXPECT_EQ(got->fanout_shards, sharded->live_shards());
  }
}

TEST(ShardedWorkbenchTest, TopKWithoutRankingIsInvalid) {
  Dataset data = MakeData(200, 8);
  auto sharded = Sharded(data, 2);
  QueryRequest bad;
  bad.kind = QueryRequest::Kind::kTopK;
  bad.ranking = nullptr;
  auto resp = sharded->Run(bad);
  EXPECT_FALSE(resp.ok());
}

TEST(ShardedWorkbenchTest, EstimateAndMetricsCoverEveryShard) {
  Dataset data = MakeData(900, 30);
  auto sharded = Sharded(data, 4);

  auto est = sharded->Estimate(PredicateSet{{0, 1}});
  ASSERT_TRUE(est.ok());
  EXPECT_GT(est->signature_pages, 0u);

  MetricsRegistry& registry = MetricsRegistry::Default();
  sharded->ExportMetrics(&registry);
  EXPECT_EQ(registry.GetGauge("pcube_shard_count")->Value(), 4.0);
  EXPECT_EQ(registry.GetGauge("pcube_shard_live")->Value(),
            static_cast<double>(sharded->live_shards()));

  std::string description = sharded->DescribeShards();
  EXPECT_NE(description.find("boolean-row hash"), std::string::npos);
}

}  // namespace
}  // namespace pcube
