// MetricsRegistry + Trace tests: histogram bucketing and quantile
// estimates, concurrent counter updates (exercised under TSan by the CI
// sanitizer job), the text rendering, trace span aggregation and the JSONL
// query log.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"

namespace pcube {
namespace {

TEST(HistogramTest, BucketEdges) {
  // Bucket 0 catches everything <= 1 microsecond, including junk.
  EXPECT_EQ(Histogram::BucketFor(0.0), 0);
  EXPECT_EQ(Histogram::BucketFor(-1.0), 0);
  EXPECT_EQ(Histogram::BucketFor(1e-9), 0);
  EXPECT_EQ(Histogram::BucketFor(Histogram::kMinUpper), 0);
  // Buckets are (upper/2, upper]: each upper edge belongs to its bucket.
  for (int i = 1; i < Histogram::kNumBuckets - 1; ++i) {
    double upper = Histogram::BucketUpper(i);
    EXPECT_EQ(Histogram::BucketFor(upper), i) << "upper edge of " << i;
    EXPECT_EQ(Histogram::BucketFor(upper * 0.75), i) << "interior of " << i;
    EXPECT_EQ(Histogram::BucketFor(upper / 2), i - 1) << "lower edge of " << i;
  }
  // Overflow lands in the last bucket instead of out of bounds.
  EXPECT_EQ(Histogram::BucketFor(1e30), Histogram::kNumBuckets - 1);
}

TEST(HistogramTest, CountSumMean) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  h.Observe(0.010);
  h.Observe(0.020);
  h.Observe(0.030);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_NEAR(h.Sum(), 0.060, 1e-12);
  EXPECT_NEAR(h.Mean(), 0.020, 1e-12);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Sum(), 0.0);
}

TEST(HistogramTest, QuantilesWithinOneBucket) {
  // 100 observations at 1 ms and one straggler at ~1 s: p50 must land in
  // the 1 ms bucket and p99+ in the straggler's bucket. The log buckets
  // guarantee at most one power of two of relative error.
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Observe(0.001);
  h.Observe(0.9);
  double p50 = h.Quantile(0.50);
  EXPECT_GT(p50, 0.0005);
  EXPECT_LE(p50, 0.002);
  double p99 = h.Quantile(0.999);
  EXPECT_GT(p99, 0.4);
  EXPECT_LE(p99, 1.1);
  // Quantiles are monotone in q.
  EXPECT_LE(h.Quantile(0.1), h.Quantile(0.5));
  EXPECT_LE(h.Quantile(0.5), h.Quantile(0.99));
}

TEST(MetricsRegistryTest, FindOrCreateReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* c1 = registry.GetCounter("pcube_test_total");
  Counter* c2 = registry.GetCounter("pcube_test_total");
  EXPECT_EQ(c1, c2);
  c1->Increment(3);
  EXPECT_EQ(c2->Value(), 3u);
  // Counters, gauges and histograms live in separate namespaces.
  Gauge* g = registry.GetGauge("pcube_test_total");
  g->Set(1.5);
  EXPECT_EQ(c1->Value(), 3u);
  EXPECT_DOUBLE_EQ(g->Value(), 1.5);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAreExact) {
  MetricsRegistry registry;
  Counter* hits = registry.GetCounter("pcube_hits_total");
  Histogram* lat = registry.GetHistogram("pcube_lat_seconds");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, hits, lat, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hits->Increment();
        lat->Observe(0.001 * (t + 1));
        // Concurrent registration of the same name must be safe too.
        registry.GetCounter("pcube_races_total")->Increment();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(hits->Value(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(lat->Count(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(registry.GetCounter("pcube_races_total")->Value(),
            uint64_t{kThreads} * kPerThread);
}

TEST(MetricsRegistryTest, RenderTextAndResetAll) {
  MetricsRegistry registry;
  registry.GetCounter("pcube_queries_total{kind=\"skyline\"}")->Increment(7);
  registry.GetGauge("pcube_heap_peak")->Set(42);
  Histogram* h = registry.GetHistogram("pcube_query_seconds");
  h->Observe(0.004);
  h->Observe(0.004);
  std::string text = registry.RenderText();
  EXPECT_NE(text.find("pcube_queries_total{kind=\"skyline\"} 7"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("pcube_heap_peak 42"), std::string::npos) << text;
  EXPECT_NE(text.find("pcube_query_seconds_count 2"), std::string::npos)
      << text;
  EXPECT_NE(text.find("pcube_query_seconds_sum"), std::string::npos) << text;
  EXPECT_NE(text.find("pcube_query_seconds{quantile=\"0.99\"}"),
            std::string::npos)
      << text;
  registry.ResetAll();
  EXPECT_EQ(registry.GetCounter("pcube_queries_total{kind=\"skyline\"}")
                ->Value(),
            0u);
  EXPECT_EQ(h->Count(), 0u);
}

TEST(TraceTest, RecordsAggregatesPerStage) {
  Trace trace;
  EXPECT_GT(trace.id(), 0u);
  trace.Record("signature_probe", 0.25);
  trace.Record("signature_probe", 0.25);
  trace.Record("io_wait", 1.0);
  ASSERT_EQ(trace.stages().size(), 2u);
  EXPECT_DOUBLE_EQ(trace.StageSeconds("signature_probe"), 0.5);
  EXPECT_DOUBLE_EQ(trace.StageSeconds("io_wait"), 1.0);
  EXPECT_DOUBLE_EQ(trace.StageSeconds("never_recorded"), 0.0);
  EXPECT_EQ(trace.stages()[0].count, 2u);
  std::string json = trace.SpansJson();
  EXPECT_NE(json.find("\"signature_probe\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":2"), std::string::npos) << json;

  Trace other;
  EXPECT_NE(other.id(), trace.id());
}

TEST(TraceTest, ScopedBindNestsAndRestores) {
  EXPECT_EQ(Trace::Current(), nullptr);
  Trace outer;
  {
    Trace::ScopedBind bind_outer(&outer);
    EXPECT_EQ(Trace::Current(), &outer);
    {
      Trace inner;
      Trace::ScopedBind bind_inner(&inner);
      EXPECT_EQ(Trace::Current(), &inner);
    }
    EXPECT_EQ(Trace::Current(), &outer);
    {
      // Binding null disables attribution without losing the outer binding.
      Trace::ScopedBind bind_null(nullptr);
      EXPECT_EQ(Trace::Current(), nullptr);
    }
    EXPECT_EQ(Trace::Current(), &outer);
  }
  EXPECT_EQ(Trace::Current(), nullptr);
  // The binding is per-thread: another thread sees its own (empty) slot.
  {
    Trace::ScopedBind bind(&outer);
    std::thread([] { EXPECT_EQ(Trace::Current(), nullptr); }).join();
  }
}

TEST(TraceTest, ScopedSpanRecordsElapsedTime) {
  Trace trace;
  {
    ScopedSpan span(&trace, "heap_expand");
  }
  ASSERT_EQ(trace.stages().size(), 1u);
  EXPECT_EQ(trace.stages()[0].name, "heap_expand");
  EXPECT_EQ(trace.stages()[0].count, 1u);
  EXPECT_GE(trace.stages()[0].seconds, 0.0);
  {
    ScopedSpan null_span(nullptr, "ignored");  // must be a safe no-op
  }
}

TEST(QueryLogTest, AppendsOneLinePerRecord) {
  std::ostringstream sink;
  QueryLog log(&sink);
  log.Append("{\"trace_id\":1}");
  log.Append("{\"trace_id\":2}");
  EXPECT_EQ(log.records(), 2u);
  EXPECT_EQ(sink.str(), "{\"trace_id\":1}\n{\"trace_id\":2}\n");
}

TEST(QueryLogTest, ConcurrentAppendsStayLineAtomic) {
  std::ostringstream sink;
  QueryLog log(&sink);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log] {
      for (int i = 0; i < kPerThread; ++i) log.Append("{\"k\":\"v\"}");
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(log.records(), uint64_t{kThreads} * kPerThread);
  // Every line is intact — no interleaved partial writes.
  std::istringstream in(sink.str());
  std::string line;
  uint64_t lines = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(line, "{\"k\":\"v\"}");
    ++lines;
  }
  EXPECT_EQ(lines, uint64_t{kThreads} * kPerThread);
}

}  // namespace
}  // namespace pcube
