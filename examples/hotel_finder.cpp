// Extension-query tour (paper §VII): a hotel-booking scenario that
// exercises the dynamic skyline, k-skyband, and convex-hull preference
// queries — all signature-pruned through the same P-Cube.
//
// Schema: (city, stars | price, distance-to-venue). A traveller attending a
// conference wants hotels in one city that are good trade-offs between
// price and distance to the venue.
//
//   ./hotel_finder [num_hotels]
#include <cstdio>
#include <cstdlib>

#include "common/random.h"
#include "query/convex_hull.h"
#include "workbench/workbench.h"

using namespace pcube;

namespace {

constexpr int kCity = 0;   // 30 cities
constexpr int kStars = 1;  // 1..5 stars (codes 0..4)

Dataset MakeHotels(uint64_t n) {
  Schema schema;
  schema.num_bool = 2;
  schema.num_pref = 2;  // price, distance (normalised)
  schema.bool_cardinality = {30, 5};
  Dataset data(schema, n);
  Random rng(777);
  for (TupleId t = 0; t < n; ++t) {
    uint32_t stars = static_cast<uint32_t>(rng.Uniform(5));
    data.SetBoolValue(t, kCity, static_cast<uint32_t>(rng.Uniform(30)));
    data.SetBoolValue(t, kStars, stars);
    // Central hotels cost more; stars raise price.
    double distance = rng.NextDouble();
    double price = std::clamp(
        0.25 + 0.12 * stars - 0.3 * distance + 0.15 * rng.NextGaussian(), 0.0,
        1.0);
    data.SetPrefValue(t, 0, static_cast<float>(price));
    data.SetPrefValue(t, 1, static_cast<float>(distance));
  }
  return data;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 80000;
  std::printf("hotel catalog: %llu hotels (city, stars | price, distance)\n\n",
              static_cast<unsigned long long>(n));
  auto wb = Workbench::Build(MakeHotels(n), WorkbenchOptions{});
  PCUBE_CHECK(wb.ok());
  Workbench& w = **wb;
  PredicateSet in_city{{kCity, 7}};

  // 1. Ordinary skyline: the price/distance trade-off frontier in city 7.
  auto sky = w.SignatureSkyline(in_city);
  PCUBE_CHECK(sky.ok());
  std::printf("skyline of city 7: %zu hotels on the price/distance frontier\n",
              sky->skyline.size());

  // 2. k-skyband: hotels dominated by fewer than 3 others — the shortlist
  // with backup options when frontier hotels sell out.
  {
    auto probe = w.cube()->MakeProbe(in_city);
    PCUBE_CHECK(probe.ok());
    SkylineQueryOptions options;
    options.skyband_k = 3;
    SkylineEngine engine(w.tree(), probe->get(), nullptr, options);
    auto band = engine.Run();
    PCUBE_CHECK(band.ok());
    std::printf("3-skyband of city 7: %zu hotels (skyline + backups)\n",
                band->skyline.size());
  }

  // 3. Dynamic skyline around a reference hotel: "alternatives to the one I
  // saw at (price 0.35, distance 0.20) that are closer to it in every
  // respect than each other".
  {
    auto probe = w.cube()->MakeProbe(in_city);
    PCUBE_CHECK(probe.ok());
    SkylineQueryOptions options;
    options.origin = {0.35f, 0.20f};
    SkylineEngine engine(w.tree(), probe->get(), nullptr, options);
    auto dynamic = engine.Run();
    PCUBE_CHECK(dynamic.ok());
    std::printf("dynamic skyline around (0.35, 0.20): %zu alternatives\n",
                dynamic->skyline.size());
  }

  // 4. Convex hull: the hotels that are optimal for SOME weighting of
  // price vs distance — what a "sort by best value" slider would surface.
  {
    auto probe = w.cube()->MakeProbe(in_city);
    PCUBE_CHECK(probe.ok());
    auto hull = ConvexHullQuery(*w.tree(), probe->get(), 0, 1);
    PCUBE_CHECK(hull.ok());
    std::printf("convex hull: %zu hotels are linear-optimal; the slider "
                "sweeps:\n",
                hull->hull.size());
    for (const HullVertex& v : hull->hull) {
      std::printf("  hotel #%-8llu price %.3f  distance %.3f\n",
                  static_cast<unsigned long long>(v.tid), v.x, v.y);
    }
  }

  IoStats io = *w.stats();
  std::printf("\nsession disk accounting: %s\n", io.ToString().c_str());
  return 0;
}
