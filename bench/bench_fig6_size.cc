// Figure 6: materialized size w.r.t. T for the R-tree, the boolean B+-tree
// indices, and the P-Cube.
//
// Paper's claim to reproduce: P-Cube is ~2x smaller than the B+-trees and
// ~8x smaller than the R-tree. (Our B+-tree entries are 16 B vs ~8 B in
// 2008-era layouts, so its curve sits higher; the P-Cube-much-smaller shape
// is what matters.)
#include "bench_common.h"

namespace pcube::bench {
namespace {

void BM_MaterializedSize(benchmark::State& state) {
  uint64_t n = static_cast<uint64_t>(state.range(0));
  std::string key = "fig6/" + std::to_string(n);
  Workbench* wb = CachedWorkbench2(key, [n] {
    return GenerateSynthetic(PaperConfig(n));
  });
  for (auto _ : state) {
    benchmark::DoNotOptimize(wb);
  }
  uint64_t btree_pages = 0;
  for (const auto& index : wb->indices()) btree_pages += index.num_pages();
  state.counters["rtree_MB"] =
      static_cast<double>(wb->tree()->num_pages()) * kPageSize / 1e6;
  state.counters["btree_MB"] = static_cast<double>(btree_pages) * kPageSize / 1e6;
  state.counters["pcube_MB"] =
      static_cast<double>(wb->cube()->MaterializedPages()) * kPageSize / 1e6;
}

void RegisterAll() {
  for (uint64_t n : TupleSweep()) {
    benchmark::RegisterBenchmark("fig6/MaterializedSize", BM_MaterializedSize)
        ->Arg(static_cast<int64_t>(n))
        ->Iterations(1);
  }
}

}  // namespace
}  // namespace pcube::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  pcube::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
