// P-Cube: the data cube for preference queries (paper §IV). One shared
// R*-tree partitions the preference dimensions; for every cell of the
// materialised cuboids (by default the atomic, one-dimensional cuboids) a
// compressed, decomposed *signature* summarises which tree regions hold the
// cell's tuples. Query processing (src/query) combines these signatures with
// branch-and-bound preference search to push boolean and preference pruning
// simultaneously.
//
// Life cycle implemented here, mirroring the paper:
//   * generation  — Build(): partition -> summarise -> compress -> decompose
//   * retrieval   — MakeProbe(): lazy cursors with per-partial page loads
//   * maintenance — ApplyChanges(): flip affected cells' signature bits for
//                   every path change the R-tree reports
//   * §VII extras — optional Bloom-filter signatures (MakeBloomProbe)
//
// Thread-safety: a built cube is immutable at query time. MakeProbe /
// MakeBloomProbe are const and safe to call from any number of threads —
// each returned probe owns its private cursors and must be confined to the
// query (thread) that made it. Build and ApplyChanges are single-threaded
// by contract (DESIGN.md "Concurrency model").
#pragma once

#include <memory>

#include "cache/epoch.h"
#include "cache/fragment_cache.h"
#include "core/bloom_store.h"
#include "core/probe.h"
#include "core/signature_builder.h"
#include "core/signature_store.h"
#include "cube/cuboid.h"
#include "rtree/rstar_tree.h"

namespace pcube {

/// Materialisation knobs.
struct PCubeOptions {
  /// Materialise all cuboids with at most this many dimensions. 1 = atomic
  /// cuboids only (the paper's default; Fig. 15 argues it suffices).
  int materialize_max_dims = 1;
  /// Also build the lossy Bloom-filter signatures of §VII.
  bool build_bloom = false;
  double bloom_bits_per_key = 10.0;
};

/// Signature-based materialisation over one dataset + R-tree.
class PCube {
 public:
  /// Computes and stores signatures for every cell of the materialised
  /// cuboids (all values of all boolean dimensions for the atomic ones).
  static Result<PCube> Build(BufferPool* pool, const Dataset& data,
                             const RStarTree& tree, const PCubeOptions& options);

  /// Re-attaches to a previously built cube (catalog-driven reopen). Only
  /// atomic-cuboid cubes without Bloom signatures are persistable.
  static PCube Attach(std::unique_ptr<SignatureStore> store, uint32_t fanout,
                      int levels, int num_bool_dims, uint64_t num_cells) {
    PCube cube(std::move(store), fanout, levels, PCubeOptions{});
    cube.num_bool_dims_ = num_bool_dims;
    cube.num_cells_ = num_cells;
    return cube;
  }

  int num_bool_dims() const { return num_bool_dims_; }

  /// Creates a boolean probe for a predicate set: a single cursor when the
  /// exact cell is materialised, otherwise one cursor per atomic predicate
  /// ANDed lazily (paper §IV.B.2). Empty predicate sets yield a TrueProbe.
  Result<std::unique_ptr<BooleanProbe>> MakeProbe(const PredicateSet& preds) const;

  /// §VII variant: probe over per-predicate Bloom filters. The caller must
  /// verify final results against the base table (probe->exact() == false).
  Result<std::unique_ptr<BooleanProbe>> MakeBloomProbe(
      const PredicateSet& preds) const;

  /// Attaches the cache layer (both optional, owned by the Workbench and
  /// outliving the cube). When set, MakeProbe hands the fragment cache to
  /// every cursor, and ApplyChanges/Rebuild bump `epoch` so stale cache
  /// entries (both levels) are detected at lookup.
  void AttachCaches(DataEpoch* epoch, FragmentCache* fragment_cache) {
    epoch_ = epoch;
    fragment_cache_ = fragment_cache;
  }

  uint32_t fanout() const { return fanout_; }
  int levels() const { return levels_; }
  const SignatureStore& store() const { return *store_; }
  SignatureStore* mutable_store() { return store_.get(); }
  uint64_t num_cells() const { return num_cells_; }

  /// Pages owned by signatures + directory (+ bloom store), for Fig. 6.
  uint64_t MaterializedPages() const;

 private:
  /// The write path's applier (workbench/write_path.h) is the only caller
  /// of the maintenance mutators below: every mutation must flow through
  /// QueryService::Apply so the WAL + epoch-stamping contract holds.
  friend class WriteApplier;

  /// Incremental maintenance (paper §IV.B.3): applies the path changes of
  /// one insert/delete batch to every affected cell's stored signature.
  /// Fails with NotSupported when the batch included a root split — callers
  /// should Rebuild() (every path changed).
  Status ApplyChanges(const Dataset& data, const PathChangeSet& changes);

  /// Recomputes every materialised signature from the tree's current state.
  Status Rebuild(const Dataset& data, const RStarTree& tree);

  PCube(std::unique_ptr<SignatureStore> store, uint32_t fanout, int levels,
        PCubeOptions options)
      : store_(std::move(store)),
        fanout_(fanout),
        levels_(levels),
        options_(options) {}

  Status BuildAllCuboids(const Dataset& data, const PathTable& paths);
  std::vector<CellId> AffectedCells(const Dataset& data, TupleId tid) const;

  std::unique_ptr<SignatureStore> store_;
  std::unique_ptr<BloomStore> bloom_;
  CellRegistry registry_;
  uint32_t fanout_;
  int levels_;
  PCubeOptions options_;
  int num_bool_dims_ = 0;
  uint64_t num_cells_ = 0;
  DataEpoch* epoch_ = nullptr;
  FragmentCache* fragment_cache_ = nullptr;
};

}  // namespace pcube
