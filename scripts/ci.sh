#!/usr/bin/env bash
# CI driver: builds and tests the tree three ways —
#   1. plain RelWithDebInfo, full ctest suite;
#   2. ThreadSanitizer (-DPCUBE_SANITIZE=thread), concurrency-focused tests
#      (thread pool, striped buffer pool, batch executor, metrics registry,
#      plus the classic buffer pool and workbench suites that share the
#      touched code);
#   3. bench_throughput smoke run (tiny dataset, {1,2} workers) validating
#      the observability artifacts: BENCH_throughput.json must carry the
#      latency quantiles, and the metrics dump + query log must exist. The
#      three artifacts are collected under build/artifacts/.
# Usage: scripts/ci.sh [jobs]   (default: nproc)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

echo "=== plain build ==="
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build -j "$JOBS"
echo "=== plain ctest ==="
ctest --test-dir build --output-on-failure

echo "=== tsan build ==="
cmake -B build-tsan -S . -DPCUBE_SANITIZE=thread
cmake --build build-tsan -j "$JOBS" --target \
  thread_pool_test buffer_pool_concurrency_test batch_executor_test \
  metrics_test buffer_pool_test workbench_test
echo "=== tsan ctest ==="
ctest --test-dir build-tsan --output-on-failure -R \
  '^(thread_pool_test|buffer_pool_concurrency_test|batch_executor_test|metrics_test|buffer_pool_test|workbench_test)$'

echo "=== throughput smoke ==="
SMOKE_DIR=build/smoke
mkdir -p "$SMOKE_DIR"
(cd "$SMOKE_DIR" &&
 PCUBE_THROUGHPUT_SMOKE=1 \
 PCUBE_THROUGHPUT_ROWS=2000 \
 PCUBE_THROUGHPUT_QUERIES=24 \
 PCUBE_THROUGHPUT_LATENCY_US=100 \
 ../bench/bench_throughput)
for field in latency_p50 latency_p95 latency_p99; do
  if ! grep -q "\"$field\"" "$SMOKE_DIR/BENCH_throughput.json"; then
    echo "ci.sh: BENCH_throughput.json is missing $field" >&2
    exit 1
  fi
done
for artifact in BENCH_throughput_metrics.prom BENCH_throughput_querylog.jsonl; do
  if [ ! -s "$SMOKE_DIR/$artifact" ]; then
    echo "ci.sh: $artifact missing or empty" >&2
    exit 1
  fi
done
if ! grep -q '^pcube_bufferpool_hits_total' "$SMOKE_DIR/BENCH_throughput_metrics.prom"; then
  echo "ci.sh: metrics dump lacks buffer-pool counters" >&2
  exit 1
fi
mkdir -p build/artifacts
cp "$SMOKE_DIR"/BENCH_throughput.json \
   "$SMOKE_DIR"/BENCH_throughput_metrics.prom \
   "$SMOKE_DIR"/BENCH_throughput_querylog.jsonl build/artifacts/
echo "ci.sh: artifacts in build/artifacts/"

echo "ci.sh: all green"
