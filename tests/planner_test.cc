// QueryPlanner tests: both plans return correct answers, the crossover of
// Fig. 11 drives the choice, and the executed cost is never far from the
// better plan.
#include <gtest/gtest.h>

#include "common/random.h"
#include "data/generators.h"
#include "query/reference.h"
#include "workbench/planner.h"

namespace pcube {
namespace {

std::unique_ptr<Workbench> MakeWorkbench(uint32_t cardinality, uint64_t seed) {
  SyntheticConfig config;
  config.num_tuples = 20000;
  config.num_bool = 2;
  config.num_pref = 2;
  config.bool_cardinality = cardinality;
  config.seed = seed;
  auto wb = Workbench::Build(GenerateSynthetic(config), WorkbenchOptions{});
  PCUBE_CHECK(wb.ok());
  return std::move(*wb);
}

TEST(PlannerTest, AnswersAlwaysCorrectEitherPlan) {
  for (uint32_t c : {5u, 2000u}) {
    auto wb = MakeWorkbench(c, 300 + c);
    QueryPlanner planner(wb.get());
    Random rng(c);
    for (int trial = 0; trial < 4; ++trial) {
      PredicateSet preds{{0, static_cast<uint32_t>(rng.Uniform(c))}};
      auto out = planner.Run(QueryRequest::Skyline(preds));
      ASSERT_TRUE(out.ok());
      EXPECT_EQ(out->tids, NaiveSkyline(wb->data(), preds))
          << "C=" << c << " " << preds.ToString();
    }
  }
}

TEST(PlannerTest, ChoosesSignatureForBroadPredicates) {
  // C = 5: each cell holds 20% of 20k tuples; fetching 4000 tuples at one
  // page each dwarfs the space traversal.
  auto wb = MakeWorkbench(5, 301);
  QueryPlanner planner(wb.get());
  auto est = planner.Estimate({{0, 2}});
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->choice, PlanChoice::kSignature);
  EXPECT_GT(est->matching_tuples, 3000u);
}

TEST(PlannerTest, ChoosesBooleanForNeedleQueries) {
  // C = 5000 over 20k tuples: ~4 matches; fetching them directly beats any
  // traversal.
  SyntheticConfig config;
  config.num_tuples = 20000;
  config.num_bool = 1;
  config.num_pref = 2;
  config.bool_cardinality = 5000;
  config.seed = 302;
  auto wb = Workbench::Build(GenerateSynthetic(config), WorkbenchOptions{});
  ASSERT_TRUE(wb.ok());
  QueryPlanner planner(wb->get());
  auto est = planner.Estimate({{0, 123}});
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->choice, PlanChoice::kBooleanFirst);
  EXPECT_LT(est->matching_tuples, 50u);
  // And the executed plan is indeed cheap.
  auto out = planner.Run(QueryRequest::Skyline({{0, 123}}));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->tids, NaiveSkyline((*wb)->data(), {{0, 123}}));
  EXPECT_LT(out->io.TotalReads(), 60u);
}

TEST(PlannerTest, ExecutedCostNeverCatastrophic) {
  // Across a selectivity sweep, the planner's executed page count stays
  // within a small factor of the better of the two plans measured directly.
  for (uint32_t c : {10u, 100u, 1000u}) {
    auto wb = MakeWorkbench(c, 310 + c);
    PredicateSet preds{{0, c / 2}};

    ASSERT_TRUE(wb->ColdStart().ok());
    auto sig = wb->SignatureSkyline(preds);
    ASSERT_TRUE(sig.ok());
    uint64_t sig_pages = wb->IoSince().TotalReads();

    ASSERT_TRUE(wb->ColdStart().ok());
    BooleanFirstExecutor boolean(&wb->indices(), wb->table());
    ASSERT_TRUE(boolean.Skyline(preds).ok());
    uint64_t bool_pages = wb->IoSince().TotalReads();

    QueryPlanner planner(wb.get());
    auto out = planner.Run(QueryRequest::Skyline(preds));
    ASSERT_TRUE(out.ok());
    uint64_t best = std::min(sig_pages, bool_pages);
    EXPECT_LE(out->io.TotalReads(), 3 * best + 10)
        << "C=" << c << " sig=" << sig_pages << " bool=" << bool_pages;
  }
}

TEST(PlannerTest, TopKPlansCorrectly) {
  auto wb = MakeWorkbench(50, 320);
  QueryPlanner planner(wb.get());
  auto f = std::make_shared<LinearRanking>(std::vector<double>{0.6, 0.4});
  PredicateSet preds{{1, 7}};
  auto out = planner.Run(QueryRequest::TopK(preds, f, 12));
  ASSERT_TRUE(out.ok());
  auto naive = NaiveTopK(wb->data(), preds, *f, 12);
  ASSERT_EQ(out->tids.size(), naive.size());
  ASSERT_EQ(out->scores.size(), naive.size());
  for (size_t i = 0; i < naive.size(); ++i) {
    EXPECT_NEAR(out->scores[i], naive[i].second, 1e-9);
  }
}

TEST(PlannerTest, CrossoverFlipsAndBothPlansAgree) {
  // High-cardinality dimension → a needle predicate: Estimate() must flip
  // to boolean-first, and forcing either plan through the hint must return
  // the exact same (sorted) tid set.
  auto wb = MakeWorkbench(5000, 330);
  QueryPlanner planner(wb.get());
  PredicateSet preds{{0, 42}};
  auto est = planner.Estimate(preds);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->choice, PlanChoice::kBooleanFirst);

  QueryRequest sig_req = QueryRequest::Skyline(preds);
  sig_req.hint = PlanHint::kSignature;
  auto sig = planner.Run(sig_req);
  ASSERT_TRUE(sig.ok());
  EXPECT_EQ(sig->estimate.choice, PlanChoice::kSignature);

  QueryRequest bool_req = QueryRequest::Skyline(preds);
  bool_req.hint = PlanHint::kBooleanFirst;
  auto boolean = planner.Run(bool_req);
  ASSERT_TRUE(boolean.ok());
  EXPECT_EQ(boolean->estimate.choice, PlanChoice::kBooleanFirst);

  EXPECT_EQ(sig->tids, boolean->tids);
  EXPECT_EQ(sig->tids, NaiveSkyline(wb->data(), preds));

  // And a broad predicate on a low-cardinality instance flips back.
  auto broad = MakeWorkbench(5, 331);
  QueryPlanner broad_planner(broad.get());
  auto broad_est = broad_planner.Estimate({{0, 2}});
  ASSERT_TRUE(broad_est.ok());
  EXPECT_EQ(broad_est->choice, PlanChoice::kSignature);
}

TEST(PlannerTest, SurfacesCountersAndTraceFromExecutedPlan) {
  auto wb = MakeWorkbench(50, 340);
  QueryPlanner planner(wb.get());
  PredicateSet preds{{0, 7}};

  QueryRequest sig_req = QueryRequest::Skyline(preds);
  sig_req.hint = PlanHint::kSignature;
  auto sig = planner.Run(sig_req);
  ASSERT_TRUE(sig.ok());
  // The signature engine's counters must come through the response.
  EXPECT_GT(sig->counters.nodes_expanded, 0u);
  EXPECT_GT(sig->counters.heap_peak, 0u);
  EXPECT_GT(sig->trace.StageSeconds("plan_estimate"), 0.0);
  EXPECT_GT(sig->trace.StageSeconds("signature_probe"), 0.0);
  EXPECT_GT(sig->io.TotalReads(), 0u);
  EXPECT_GT(sig->trace_id(), 0u);

  QueryRequest bool_req = QueryRequest::Skyline(preds);
  bool_req.hint = PlanHint::kBooleanFirst;
  auto boolean = planner.Run(bool_req);
  ASSERT_TRUE(boolean.ok());
  // Boolean-first reports its in-memory working set (Fig. 10 accounting).
  EXPECT_GT(boolean->counters.heap_peak, 0u);
  EXPECT_EQ(boolean->counters.nodes_expanded, 0u);
  EXPECT_GT(boolean->trace.StageSeconds("boolean_first"), 0.0);
}

}  // namespace
}  // namespace pcube
