#include "common/metrics.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace pcube {

int Histogram::BucketFor(double v) {
  if (!(v > kMinUpper)) return 0;  // also catches NaN and negatives
  int i = static_cast<int>(std::ceil(std::log2(v / kMinUpper)));
  if (i < 0) i = 0;
  if (i >= kNumBuckets) i = kNumBuckets - 1;
  return i;
}

double Histogram::BucketUpper(int i) { return kMinUpper * std::ldexp(1.0, i); }

double Histogram::Quantile(double q) const {
  uint64_t total = Count();
  if (total == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  double target = q * static_cast<double>(total);
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    uint64_t in_bucket = BucketCount(i);
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= target) {
      double lower = i == 0 ? 0 : BucketUpper(i - 1);
      double upper = BucketUpper(i);
      double frac = (target - static_cast<double>(seen)) /
                    static_cast<double>(in_bucket);
      return lower + frac * (upper - lower);
    }
    seen += in_bucket;
  }
  return BucketUpper(kNumBuckets - 1);
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  WriterLock lock(&mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  WriterLock lock(&mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  WriterLock lock(&mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Splices `label` into a metric name, before any existing `{...}` suffix:
/// ("h", quantile="0.5") -> h{quantile="0.5"};
/// ("h{op=\"x\"}", ...)  -> h{op="x",quantile="0.5"}.
std::string WithLabel(const std::string& name, const std::string& label) {
  if (name.find('{') == std::string::npos) return name + "{" + label + "}";
  std::string out = name;
  out.insert(out.size() - 1, "," + label);
  return out;
}

}  // namespace

std::string MetricsRegistry::RenderText() const {
  ReaderLock lock(&mu_);
  std::ostringstream out;
  for (const auto& [name, c] : counters_) {
    out << name << " " << c->Value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out << name << " " << FormatDouble(g->Value()) << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out << name << "_count " << h->Count() << "\n";
    out << name << "_sum " << FormatDouble(h->Sum()) << "\n";
    for (double q : {0.5, 0.95, 0.99}) {
      out << WithLabel(name, "quantile=\"" + FormatDouble(q) + "\"") << " "
          << FormatDouble(h->Quantile(q)) << "\n";
    }
  }
  return out.str();
}

void MetricsRegistry::ResetAll() {
  ReaderLock lock(&mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace pcube
