// Figure 8: skyline query execution time w.r.t. T for Boolean-first,
// Domination-first, and Signature, single boolean predicate.
//
// Paper's claim to reproduce: Signature is at least one order of magnitude
// faster; it combines both pruning opportunities, while Boolean pays for
// selection-sized fetches and Domination for unpruned space traversal plus
// random boolean verification.
#include "bench_common.h"

namespace pcube::bench {
namespace {

Workbench* WorkbenchForT(uint64_t n) {
  return CachedWorkbench2("fig8/" + std::to_string(n), [n] {
    return GenerateSynthetic(PaperConfig(n));
  });
}

void BM_Skyline(benchmark::State& state, const char* method) {
  uint64_t n = static_cast<uint64_t>(state.range(0));
  Workbench* wb = WorkbenchForT(n);
  PredicateSet preds = OnePredicate(100);
  MeasuredRun last;
  for (auto _ : state) {
    if (std::string(method) == "signature") {
      last = RunSignatureSkyline(wb, preds);
    } else if (std::string(method) == "domination") {
      last = RunDominationSkyline(wb, preds);
    } else {
      last = RunBooleanSkyline(wb, preds);
    }
    state.SetIterationTime(CostSeconds(last));
  }
  ReportRun(state, last);
}

void RegisterAll() {
  for (uint64_t n : TupleSweep()) {
    for (const char* method : {"boolean", "domination", "signature"}) {
      benchmark::RegisterBenchmark(
          (std::string("fig8/Skyline/") + method).c_str(), BM_Skyline, method)
          ->Arg(static_cast<int64_t>(n))
          ->Iterations(3)
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace pcube::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  pcube::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
