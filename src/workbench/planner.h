// Cost-based method selection. Fig. 11 of the paper shows a crossover: for
// highly selective predicates (large C) the Boolean-first plan approaches —
// and can beat — the signature plan, because fetching a handful of matching
// tuples is cheaper than any space traversal. A production system should
// therefore pick the method per query. This planner estimates page costs
// from the boolean indices' exact match counts and a simple R-tree traversal
// model, runs the cheaper plan (or the one forced by the request's
// PlanHint), and reports the estimates, the executed plan's EngineCounters
// and I/O, and a per-stage Trace in one QueryResponse.
#pragma once

#include <chrono>
#include <optional>

#include "query/request.h"
#include "workbench/workbench.h"

namespace pcube {

/// Legacy aliases from before the unified query API: a planned query result
/// IS a QueryResponse (tids/scores, estimate, counters, io, trace).
using PlannedSkyline = QueryResponse;
using PlannedTopK = QueryResponse;

/// Chooses and executes plans against one workbench.
class QueryPlanner {
 public:
  /// `wb` must outlive the planner and have indices + cube built.
  explicit QueryPlanner(Workbench* wb) : wb_(wb) {}

  /// Estimates both plans for `preds` without executing anything
  /// (index-only match counting).
  Result<PlanEstimate> Estimate(const PredicateSet& preds) const;

  /// The unified entry point: estimates, picks a plan (honouring
  /// request.hint), cold-starts the cache and executes. The response's
  /// estimate.choice is the plan that actually ran.
  Result<QueryResponse> Run(const QueryRequest& request);

  /// Runs the cheaper skyline plan (cold cache). Shorthand for
  /// Run(QueryRequest::Skyline(preds)).
  Result<PlannedSkyline> Skyline(const PredicateSet& preds);

  /// Runs the cheaper top-k plan (cold cache). `f` must outlive the call.
  Result<PlannedTopK> TopK(const PredicateSet& preds, const RankingFunction& f,
                           size_t k);

 private:
  /// Runs the branch-and-bound signature plan into `resp`.
  Status ExecuteSignature(const QueryRequest& request,
                          const std::optional<std::chrono::steady_clock::
                                                  time_point>& deadline,
                          QueryResponse* resp);
  /// Runs the boolean-first baseline plan into `resp`.
  Status ExecuteBoolean(const QueryRequest& request, QueryResponse* resp);
  /// True when the boolean plan can answer this request (it implements
  /// plain skylines and top-k, but not skybands or dynamic skylines).
  static bool CanDegrade(const QueryRequest& request);

  Workbench* wb_;
};

}  // namespace pcube
