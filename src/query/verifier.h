// Random-access boolean verification against the base table — the minimal
// probing step [3] of the Domination-first baseline (paper §VI.A: "The
// boolean verification involves randomly accessing data by tid stored in the
// R-tree") and the safety net for lossy Bloom probes. Each verification
// fetches the tuple's heap-file page charged to kBooleanVerify (the paper's
// DBool accesses).
#pragma once

#include "cube/cell.h"
#include "storage/table_store.h"

namespace pcube {

/// Verifies that a candidate tuple satisfies a predicate set.
class TupleVerifier {
 public:
  TupleVerifier(const TableStore* table, PredicateSet preds)
      : table_(table), preds_(std::move(preds)) {}

  /// True iff tuple `tid` satisfies every predicate.
  Result<bool> Verify(TupleId tid) const {
    auto tuple = table_->GetTuple(tid, IoCategory::kBooleanVerify);
    if (!tuple.ok()) return tuple.status();
    for (const Predicate& p : preds_.predicates()) {
      if (tuple->bools[p.dim] != p.value) return false;
    }
    return true;
  }

  const PredicateSet& predicates() const { return preds_; }

 private:
  const TableStore* table_;
  PredicateSet preds_;
};

}  // namespace pcube
