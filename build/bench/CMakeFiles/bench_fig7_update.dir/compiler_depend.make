# Empty compiler generated dependencies file for bench_fig7_update.
# This may be replaced when dependencies are built.
