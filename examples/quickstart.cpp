// Quickstart: build a P-Cube over the paper's Table I sample database and
// run the worked examples end to end — the (A=a1) signature of Fig. 2, the
// signature assembly of Fig. 3, and signature-pruned skyline / top-k queries
// over the Fig. 1 R-tree partition.
//
//   ./quickstart
#include <cstdio>

#include "core/signature_algebra.h"
#include "core/signature_builder.h"
#include "data/table1.h"
#include "workbench/workbench.h"

using namespace pcube;

int main() {
  std::printf("P-Cube quickstart: Table I of Xin & Han, ICDE 2008\n\n");

  // ---------------------------------------------------------------- setup
  // The sample relation: boolean dimensions A (a1..a4), B (b1..b3);
  // preference dimensions X, Y. We rebuild the exact R-tree of Fig. 1
  // (m = 1, M = 2), whose tuple paths are Table I's `path` column.
  Dataset data = MakeTable1Dataset();
  MemoryPageManager pm;
  IoStats stats;
  BufferPool pool(&pm, 1024, &stats);
  RTreeOptions rtree_options;
  rtree_options.dims = 2;
  rtree_options.max_entries = 2;
  auto tree = RStarTree::BuildExplicit(&pool, rtree_options,
                                       Table1TreeEntries());
  PCUBE_CHECK(tree.ok());

  auto cube = PCube::Build(&pool, data, *tree, PCubeOptions{});
  PCUBE_CHECK(cube.ok());
  std::printf("Built P-Cube: %llu atomic cells, %d signature levels, M=%u\n\n",
              static_cast<unsigned long long>(cube->num_cells()),
              cube->levels(), cube->fanout());

  // ------------------------------------------------ Fig. 2: one signature
  auto paths = PathTable::Collect(*tree);
  PCUBE_CHECK(paths.ok());
  Signature a1 = BuildCellSignature(data, *paths, {{kTable1DimA, 0}},
                                    tree->fanout(), cube->levels());
  std::printf("(A=a1) signature (Fig. 2a), one bit array per R-tree node:\n%s\n",
              a1.ToString().c_str());

  // --------------------------------------- Fig. 3: assembling signatures
  Signature a2 = BuildCellSignature(data, *paths, {{kTable1DimA, 1}},
                                    tree->fanout(), cube->levels());
  Signature b2 = BuildCellSignature(data, *paths, {{kTable1DimB, 1}},
                                    tree->fanout(), cube->levels());
  std::printf("(A=a2 or B=b2) signature (Fig. 3b):\n%s\n",
              SignatureUnion(a2, b2).ToString().c_str());
  std::printf("(A=a2 and B=b2) signature (Fig. 3c):\n%s\n",
              SignatureIntersect(a2, b2).ToString().c_str());

  // -------------------------------------------- skyline with a predicate
  // "skyline of all b3 tuples, preferring small X and Y"
  auto probe = cube->MakeProbe({{kTable1DimB, 2}});
  PCUBE_CHECK(probe.ok());
  SkylineEngine skyline_engine(&*tree, probe->get(), nullptr);
  auto skyline = skyline_engine.Run();
  PCUBE_CHECK(skyline.ok());
  std::printf("skyline of B=b3 tuples:");
  for (const SearchEntry& e : skyline->skyline) {
    std::printf(" t%llu(%.2f,%.2f)", static_cast<unsigned long long>(e.id + 1),
                e.rect.min[0], e.rect.min[1]);
  }
  std::printf("\n  (entries pruned by boolean: %llu, by domination: %llu)\n",
              static_cast<unsigned long long>(skyline->counters.pruned_boolean),
              static_cast<unsigned long long>(
                  skyline->counters.pruned_preference));

  // ------------------------------------------------ top-k with a predicate
  // "2 B=b3 tuples closest to the expectation point (0.5, 0.4)"
  WeightedL2Ranking f({0.5, 0.4}, {1.0, 1.0});
  auto probe2 = cube->MakeProbe({{kTable1DimB, 2}});
  PCUBE_CHECK(probe2.ok());
  TopKEngine topk_engine(&*tree, probe2->get(), nullptr, &f, 2);
  auto topk = topk_engine.Run();
  PCUBE_CHECK(topk.ok());
  std::printf("top-2 B=b3 tuples nearest (0.5, 0.4):");
  for (const SearchEntry& e : topk->results) {
    std::printf(" t%llu(score %.4f)",
                static_cast<unsigned long long>(e.id + 1), e.key);
  }
  std::printf("\n\nDisk accounting for this session: %s\n",
              stats.ToString().c_str());
  return 0;
}
