// B+-tree tests: point ops, splits across many levels, range scans, bulk
// loading, and a randomized property test against a std::map oracle.
#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "storage/bplus_tree.h"

namespace pcube {
namespace {

class BPlusTreeTest : public ::testing::Test {
 protected:
  BPlusTreeTest() : pool_(&pm_, 1024, &stats_) {}

  MemoryPageManager pm_;
  IoStats stats_;
  BufferPool pool_;
};

TEST_F(BPlusTreeTest, EmptyTree) {
  auto tree = BPlusTree::Create(&pool_);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->num_entries(), 0u);
  EXPECT_FALSE(tree->Get(1).ok());
  int visits = 0;
  ASSERT_TRUE(tree->RangeScan(0, ~uint64_t{0}, [&](uint64_t, uint64_t) {
    ++visits;
    return true;
  }).ok());
  EXPECT_EQ(visits, 0);
}

TEST_F(BPlusTreeTest, InsertGetOverwrite) {
  auto tree = BPlusTree::Create(&pool_);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree->Insert(5, 50).ok());
  ASSERT_TRUE(tree->Insert(3, 30).ok());
  ASSERT_TRUE(tree->Insert(8, 80).ok());
  EXPECT_EQ(*tree->Get(5), 50u);
  EXPECT_EQ(*tree->Get(3), 30u);
  ASSERT_TRUE(tree->Insert(5, 55).ok());
  EXPECT_EQ(*tree->Get(5), 55u);
  EXPECT_EQ(tree->num_entries(), 3u);
  EXPECT_TRUE(tree->Get(4).status().IsNotFound());
}

TEST_F(BPlusTreeTest, ManyInsertsForceMultiLevelSplits) {
  auto tree = BPlusTree::Create(&pool_);
  ASSERT_TRUE(tree.ok());
  const uint64_t n = 100000;
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t key = (i * 2654435761u) % (10 * n);  // scrambled order
    ASSERT_TRUE(tree->Insert(key, key + 1).ok());
  }
  EXPECT_GE(tree->height(), 2);
  for (uint64_t i = 0; i < n; i += 997) {
    uint64_t key = (i * 2654435761u) % (10 * n);
    EXPECT_EQ(*tree->Get(key), key + 1);
  }
}

TEST_F(BPlusTreeTest, RangeScanAscendingAndBounded) {
  auto tree = BPlusTree::Create(&pool_);
  ASSERT_TRUE(tree.ok());
  for (uint64_t k = 0; k < 3000; k += 3) {
    ASSERT_TRUE(tree->Insert(k, k * 10).ok());
  }
  std::vector<uint64_t> seen;
  ASSERT_TRUE(tree->RangeScan(100, 200, [&](uint64_t k, uint64_t v) {
    EXPECT_EQ(v, k * 10);
    seen.push_back(k);
    return true;
  }).ok());
  ASSERT_FALSE(seen.empty());
  EXPECT_EQ(seen.front(), 102u);
  EXPECT_EQ(seen.back(), 198u);
  for (size_t i = 1; i < seen.size(); ++i) EXPECT_LT(seen[i - 1], seen[i]);
  // Early stop.
  int count = 0;
  ASSERT_TRUE(tree->RangeScan(0, ~uint64_t{0}, [&](uint64_t, uint64_t) {
    return ++count < 5;
  }).ok());
  EXPECT_EQ(count, 5);
}

TEST_F(BPlusTreeTest, BulkLoadMatchesInserts) {
  std::vector<std::pair<uint64_t, uint64_t>> sorted;
  for (uint64_t k = 0; k < 60000; ++k) sorted.emplace_back(k * 7, k);
  auto bulk = BPlusTree::BulkLoad(&pool_, sorted);
  ASSERT_TRUE(bulk.ok());
  EXPECT_EQ(bulk->num_entries(), sorted.size());
  for (uint64_t k = 0; k < 60000; k += 1009) {
    EXPECT_EQ(*bulk->Get(k * 7), k);
  }
  EXPECT_FALSE(bulk->Get(3).ok());
  // Full scan returns everything in order.
  uint64_t expect = 0;
  ASSERT_TRUE(bulk->RangeScan(0, ~uint64_t{0}, [&](uint64_t k, uint64_t v) {
    EXPECT_EQ(k, expect * 7);
    EXPECT_EQ(v, expect);
    ++expect;
    return true;
  }).ok());
  EXPECT_EQ(expect, 60000u);
}

TEST_F(BPlusTreeTest, BulkLoadEmptyAndSingle) {
  auto empty = BPlusTree::BulkLoad(&pool_, {});
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->num_entries(), 0u);
  auto one = BPlusTree::BulkLoad(&pool_, {{42, 420}});
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(*one->Get(42), 420u);
}

TEST_F(BPlusTreeTest, InsertAfterBulkLoad) {
  std::vector<std::pair<uint64_t, uint64_t>> sorted;
  for (uint64_t k = 0; k < 10000; ++k) sorted.emplace_back(2 * k, k);
  auto tree = BPlusTree::BulkLoad(&pool_, sorted);
  ASSERT_TRUE(tree.ok());
  for (uint64_t k = 0; k < 2000; ++k) {
    ASSERT_TRUE(tree->Insert(2 * k + 1, k).ok());
  }
  for (uint64_t k = 0; k < 2000; ++k) {
    EXPECT_EQ(*tree->Get(2 * k + 1), k);
    EXPECT_EQ(*tree->Get(2 * k), k);
  }
}

TEST_F(BPlusTreeTest, SurvivesTinyBufferPool) {
  // With capacity 3 the tree thrashes the pool; correctness must hold.
  BufferPool tiny(&pm_, 3, &stats_);
  auto tree = BPlusTree::Create(&tiny);
  ASSERT_TRUE(tree.ok());
  for (uint64_t k = 0; k < 20000; ++k) {
    ASSERT_TRUE(tree->Insert(k * 13 % 50021, k).ok());
  }
  for (uint64_t k = 0; k < 20000; k += 503) {
    EXPECT_EQ(*tree->Get(k * 13 % 50021), k);
  }
}

class BPlusTreePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BPlusTreePropertyTest, MatchesMapOracle) {
  MemoryPageManager pm;
  IoStats stats;
  BufferPool pool(&pm, 64, &stats);
  auto tree = BPlusTree::Create(&pool);
  ASSERT_TRUE(tree.ok());
  std::map<uint64_t, uint64_t> oracle;
  Random rng(GetParam());
  for (int op = 0; op < 20000; ++op) {
    uint64_t k = rng.Uniform(5000);
    uint64_t v = rng.Next();
    ASSERT_TRUE(tree->Insert(k, v).ok());
    oracle[k] = v;
  }
  EXPECT_EQ(tree->num_entries(), oracle.size());
  // Point queries.
  for (uint64_t k = 0; k < 5000; k += 7) {
    auto it = oracle.find(k);
    auto got = tree->Get(k);
    if (it == oracle.end()) {
      EXPECT_FALSE(got.ok());
    } else {
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(*got, it->second);
    }
  }
  // Random range scans.
  for (int trial = 0; trial < 20; ++trial) {
    uint64_t lo = rng.Uniform(5000);
    uint64_t hi = lo + rng.Uniform(1000);
    std::vector<std::pair<uint64_t, uint64_t>> got;
    ASSERT_TRUE(tree->RangeScan(lo, hi, [&](uint64_t k, uint64_t v) {
      got.emplace_back(k, v);
      return true;
    }).ok());
    std::vector<std::pair<uint64_t, uint64_t>> expect(
        oracle.lower_bound(lo), oracle.upper_bound(hi));
    EXPECT_EQ(got, expect);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BPlusTreePropertyTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace pcube
