// Multi-threaded BufferPool tests: N threads hammer Get/GetMutable/pin/evict
// on overlapping page sets through a small striped pool, asserting that no
// pin is ever lost, that hit+miss totals are exact, and that every fetched
// or written-back byte survives intact. Run under TSan by scripts/ci.sh.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/bit_util.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "storage/buffer_pool.h"

namespace pcube {
namespace {

constexpr size_t kNumPages = 128;
constexpr int kNumThreads = 8;
constexpr int kItersPerThread = 4000;

/// Allocates kNumPages pages, stamping each with its own id, and leaves the
/// pool cold so the test starts with every access a potential miss.
void StampPages(BufferPool* pool) {
  for (size_t i = 0; i < kNumPages; ++i) {
    PageId pid;
    auto h = pool->New(IoCategory::kHeapFile, &pid);
    ASSERT_TRUE(h.ok());
    ASSERT_EQ(pid, i);
    bit_util::StoreLE<uint64_t>((*h)->data(), pid);
  }
  ASSERT_TRUE(pool->Clear().ok());
}

TEST(BufferPoolConcurrencyTest, OverlappingReadersKeepExactCounters) {
  MemoryPageManager pm;
  IoStats stats;
  // 32 frames over 8 stripes: constant eviction pressure.
  BufferPool pool(&pm, 32, &stats, /*num_stripes=*/8);
  StampPages(&pool);
  stats.Reset();

  std::atomic<uint64_t> total_gets{0};
  std::atomic<uint64_t> validation_failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kNumThreads; ++t) {
    threads.emplace_back([&, t] {
      Random rng(1000 + t);
      uint64_t gets = 0;
      for (int i = 0; i < kItersPerThread; ++i) {
        // Overlapping windows: every thread covers half the pages, shifted.
        PageId pid = (t * (kNumPages / kNumThreads) +
                      rng.Uniform(kNumPages / 2)) % kNumPages;
        auto h = pool.Get(pid, IoCategory::kHeapFile);
        if (!h.ok()) {
          validation_failures.fetch_add(1);
          continue;
        }
        ++gets;
        if (bit_util::LoadLE<uint64_t>((*h)->data()) != pid) {
          validation_failures.fetch_add(1);
        }
        // Sometimes pin a second page before releasing the first, exercising
        // multi-pin interleavings across stripes.
        if (i % 7 == 0) {
          PageId other = rng.Uniform(kNumPages);
          auto h2 = pool.Get(other, IoCategory::kRtreeBlock);
          if (h2.ok()) {
            ++gets;
            if (bit_util::LoadLE<uint64_t>((*h2)->data()) != other) {
              validation_failures.fetch_add(1);
            }
          }
        }
      }
      total_gets.fetch_add(gets);
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(validation_failures.load(), 0u);
  // Every Get is exactly one hit or one miss — none lost, none doubled.
  EXPECT_EQ(pool.hits() + pool.misses(), total_gets.load());
  // Every miss performed exactly one physical read.
  EXPECT_EQ(stats.TotalReads(), pool.misses());
  // No lost pins: Clear() aborts the process if any frame is still pinned.
  EXPECT_TRUE(pool.Clear().ok());
}

TEST(BufferPoolConcurrencyTest, ConcurrentWritersPersistThroughEviction) {
  MemoryPageManager pm;
  IoStats stats;
  BufferPool pool(&pm, 16, &stats, /*num_stripes=*/4);
  StampPages(&pool);

  // Each thread owns the pages with pid % kNumThreads == t and bumps a
  // counter in its pages; eviction write-back and re-fetch must never lose
  // an increment because the page is pinned during the read-modify-write.
  std::vector<std::thread> threads;
  constexpr int kIncrements = 500;
  for (int t = 0; t < kNumThreads; ++t) {
    threads.emplace_back([&, t] {
      Random rng(77 + t);
      for (int i = 0; i < kIncrements; ++i) {
        PageId pid = t + kNumThreads * rng.Uniform(kNumPages / kNumThreads);
        auto h = pool.GetMutable(pid, IoCategory::kHeapFile);
        ASSERT_TRUE(h.ok());
        uint64_t v = bit_util::LoadLE<uint64_t>((*h)->data() + 8);
        bit_util::StoreLE<uint64_t>((*h)->data() + 8, v + 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_TRUE(pool.Clear().ok());

  // All increments must be on disk.
  uint64_t total = 0;
  for (size_t pid = 0; pid < kNumPages; ++pid) {
    Page raw;
    ASSERT_TRUE(pm.Read(pid, &raw).ok());
    EXPECT_EQ(bit_util::LoadLE<uint64_t>(raw.data()), pid);  // stamp intact
    total += bit_util::LoadLE<uint64_t>(raw.data() + 8);
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kNumThreads) * kIncrements);
}

TEST(BufferPoolConcurrencyTest, PerThreadStatsSumToGlobal) {
  MemoryPageManager pm;
  IoStats stats;
  BufferPool pool(&pm, 16, &stats, /*num_stripes=*/4);
  StampPages(&pool);
  stats.Reset();

  std::vector<IoStats> per_thread(kNumThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kNumThreads; ++t) {
    threads.emplace_back([&, t] {
      BufferPool::ScopedThreadStats scope(&per_thread[t]);
      Random rng(5 + t);
      for (int i = 0; i < 1000; ++i) {
        auto h = pool.Get(rng.Uniform(kNumPages), IoCategory::kSignature);
        ASSERT_TRUE(h.ok());
      }
    });
  }
  for (auto& t : threads) t.join();

  IoStats merged;
  for (const IoStats& s : per_thread) merged.Merge(s);
  // Every physical read is charged to exactly one thread's sink and to the
  // shared counters, so the per-thread stats aggregate to the global view.
  EXPECT_EQ(merged.TotalReads(), stats.TotalReads());
  EXPECT_EQ(merged.ReadCount(IoCategory::kSignature),
            stats.ReadCount(IoCategory::kSignature));
  EXPECT_EQ(stats.TotalReads(), pool.misses());
  EXPECT_TRUE(pool.Clear().ok());
}

TEST(BufferPoolConcurrencyTest, StripedPoolStillEnforcesLruSemantics) {
  // Single-threaded sanity on the striped configuration: repeated access to
  // one page stays a hit even under eviction pressure in other stripes.
  MemoryPageManager pm;
  IoStats stats;
  BufferPool pool(&pm, 8, &stats, /*num_stripes=*/4);
  StampPages(&pool);
  stats.Reset();

  ASSERT_TRUE(pool.Get(0, IoCategory::kHeapFile).ok());  // miss
  for (int i = 0; i < 100; ++i) {
    // Other pages of stripe 0 (pids ≡ 0 mod 4) would evict page 0 only once
    // the stripe's capacity is exhausted; touching page 0 keeps it hot.
    ASSERT_TRUE(pool.Get(0, IoCategory::kHeapFile).ok());
  }
  EXPECT_EQ(stats.TotalReads(), 1u);
  EXPECT_EQ(pool.hits(), 100u);
}

}  // namespace
}  // namespace pcube
