// Mock declarations for the pcube-lint fixture corpus (DESIGN.md §16).
//
// The fixtures are regression tests for the lint checks themselves: each
// seeded violation carries an `// expect-lint: <check>` marker, and
// lint_fixture_test asserts the scanner reports exactly the marked lines.
// Marker comments are invisible to every check (so a marker can never
// silence the violation it labels).
//
// This header keeps the fixtures valid standalone C++ — they are never
// linked into the product, but staying compilable means the clang-tidy
// plugin tier can run on the same corpus wherever its headers exist.
#pragma once

#include <cstdint>

// Minimal stand-ins for the real types the checks key on. The lexical
// fallback matches these by name; the plugin matches the real ::pcube
// types, for which these mocks are name-compatible.
namespace pcube {

struct Status {
  bool ok() const { return true; }
  void IgnoreError() const {}
};

struct PathChangeSet {};
struct Dataset {};

class RStarTree {
 public:
  Status Insert(float point, uint64_t tid, PathChangeSet* changes);
  Status Delete(float point, uint64_t tid, PathChangeSet* changes);
};

class TableStore {
 public:
  Status Append(uint32_t bools, uint32_t prefs);
};

class PCube {
 public:
  Status ApplyChanges(const Dataset& data, const PathChangeSet& changes);
  Status Rebuild(const Dataset& data, const RStarTree& tree);
};

// Lock wrappers + annotation macros, mirroring common/mutex.h and
// common/thread_annotations.h (expanded to nothing here: the lexical tier
// matches the tokens, the plugin tier the attributes on real builds).
class Mutex {};
class SharedMutex {};
class CondVar {};

#ifndef GUARDED_BY
#define GUARDED_BY(x)
#endif
#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x)
#endif

// Abort-family macros, mirroring common/logging.h.
#ifndef PCUBE_CHECK
#define PCUBE_CHECK(cond) ((void)(cond))
#define PCUBE_CHECK_LE(a, b) ((void)((a) <= (b)))
#define PCUBE_DCHECK(cond) ((void)(cond))
#endif

}  // namespace pcube
