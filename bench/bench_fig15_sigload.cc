// Figure 15: signature loading time vs. query processing time for 1-4
// boolean predicates on CoverType.
//
// Paper's claims to reproduce: loading time grows slightly with the number
// of predicates (k one-dimensional signatures are loaded) but stays a small
// fraction (< 10%) of query time — the evidence that materialising only
// atomic cuboids is good enough in practice.
#include "bench_common.h"

namespace pcube::bench {
namespace {

Workbench* CoverTypeWorkbench() {
  return CachedWorkbench2("fig15", [] {
    CoverTypeConfig config;
    config.num_tuples = 58101 * Scale();
    return GenerateCoverTypeSurrogate(config);
  });
}

void BM_SignatureLoadVsQuery(benchmark::State& state) {
  int npreds = static_cast<int>(state.range(0));
  Workbench* wb = CoverTypeWorkbench();
  PredicateSet preds = CoverTypePredicates(npreds);
  MeasuredRun last;
  for (auto _ : state) {
    last = RunSignatureSkyline(wb, preds);
    state.SetIterationTime(CostSeconds(last));
  }
  // "Load" = time spent in the boolean probes + simulated disk for the
  // signature pages and their directory lookups; "Query" is the rest.
  double load_io = static_cast<double>(
      last.io.ReadCount(IoCategory::kSignature) +
      last.io.ReadCount(IoCategory::kBtree));
  double load_s = last.sig_seconds + load_io * PageLatencySeconds();
  double total_s = CostSeconds(last);
  state.counters["load_ms"] = load_s * 1e3;
  state.counters["query_ms"] = (total_s - load_s) * 1e3;
  state.counters["load_fraction"] = total_s > 0 ? load_s / total_s : 0;
  state.counters["sig_pages"] =
      static_cast<double>(last.io.ReadCount(IoCategory::kSignature));
}

void RegisterAll() {
  for (int npreds : {1, 2, 3, 4}) {
    benchmark::RegisterBenchmark("fig15/SignatureLoadVsQuery",
                                 BM_SignatureLoadVsQuery)
        ->Arg(npreds)
        ->Iterations(3)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace pcube::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  pcube::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
